package stream

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// mergeFanout is the width of MergeAll's aggregation tree: up to this many
// summaries are combined by one flat refinement sweep + one recompaction.
// Beyond it, summaries are grouped (fixed boundaries, so the result is
// independent of scheduling) and the groups' outputs merged recursively —
// the parallel aggregation tree of the mergeable-summaries setting. 8 keeps
// each sweep's refinement at most ~8·(2k+γ) intervals, comfortably one
// merging run, while a tree over 1024 shards is only 4 levels deep.
const mergeFanout = 8

// Merge combines two histogram summaries of *disjoint* data sets over the
// same domain into one O(k)-piece summary. The pointwise sum h1 + h2 is
// formed exactly on the common refinement of the two partitions and then
// recompacted with one merging run. It is MergeAll for the two-summary
// case (bit-identical output).
func Merge(h1, h2 *core.Histogram, k int, opts core.Options) (*core.Histogram, error) {
	if h1.N() != h2.N() {
		return nil, fmt.Errorf("stream: merging summaries over [1,%d] and [1,%d]", h1.N(), h2.N())
	}
	return flatMerge([]*core.Histogram{h1, h2}, h1.N(), k, opts)
}

// MergeAll combines any number of histogram summaries of disjoint data sets
// over the same domain into one O(k)-piece summary.
//
// Up to mergeFanout summaries are merged by a single pass: one sweep over
// the m-way common refinement of all partitions (each output interval's
// value is the sum of the m covering pieces, accumulated in input order, so
// the result is deterministic) followed by one recompaction — replacing the
// pairwise chain Merge(Merge(h1, h2), h3)… whose repeated 2-way refinements
// and intermediate recompactions cost O(m²) refinement work and compound
// m−1 approximation steps. Larger inputs recurse through an aggregation
// tree with fixed group boundaries, the groups merged on opts.Workers
// goroutines (0 = all cores); the output is bit-identical for every worker
// count because grouping and accumulation order never depend on scheduling.
func MergeAll(hs []*core.Histogram, k int, opts core.Options) (*core.Histogram, error) {
	if len(hs) == 0 {
		return nil, fmt.Errorf("stream: MergeAll needs at least one summary")
	}
	n := hs[0].N()
	for _, h := range hs[1:] {
		if h.N() != n {
			return nil, fmt.Errorf("stream: merging summaries over [1,%d] and [1,%d]", n, h.N())
		}
	}
	for len(hs) > mergeFanout {
		// One tree level: fixed equal groups of ≤ mergeFanout summaries,
		// merged independently (and concurrently when workers allow).
		groups := (len(hs) + mergeFanout - 1) / mergeFanout
		next := make([]*core.Histogram, groups)
		errs := make([]error, groups)
		w := parallel.Resolve(opts.Workers)
		src := hs
		parallel.ForChunks(w, len(src), groups, func(ci, lo, hi int) {
			next[ci], errs[ci] = flatMerge(src[lo:hi], n, k, opts)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		hs = next
	}
	return flatMerge(hs, n, k, opts)
}

// flatMerge is the single-pass m-way combiner: sweep the common refinement
// of all m partitions left to right (the next boundary is the minimum of
// the m cursors' piece ends), summing values in input order, then recompact
// the refinement with one merging run. O(R·m) for R refinement intervals;
// callers keep m ≤ mergeFanout so R ≤ m·maxPieces stays one compaction's
// worth of input.
func flatMerge(hs []*core.Histogram, n, k int, opts core.Options) (*core.Histogram, error) {
	m := len(hs)
	pieces := make([][]core.Piece, m)
	idx := make([]int, m)
	total := 0
	for i, h := range hs {
		pieces[i] = h.Pieces()
		total += h.NumPieces()
	}
	part := make(interval.Partition, 0, total)
	stats := make([]sparse.Stat, 0, total)
	lo := 1
	for lo <= n {
		hi := n
		v := 0.0
		for i := 0; i < m; i++ {
			pc := &pieces[i][idx[i]]
			if pc.Hi < hi {
				hi = pc.Hi
			}
			v += pc.Value
		}
		length := float64(hi - lo + 1)
		part = append(part, interval.New(lo, hi))
		stats = append(stats, sparse.Stat{Len: hi - lo + 1, Sum: v * length, SumSq: v * v * length})
		for i := 0; i < m; i++ {
			if pieces[i][idx[i]].Hi == hi {
				idx[i]++
			}
		}
		lo = hi + 1
	}
	res, err := core.ConstructHistogramFromSummary(n, part, stats, k, opts)
	if err != nil {
		return nil, err
	}
	return res.Histogram, nil
}
