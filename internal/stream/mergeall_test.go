package stream

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// mergeFixture builds m per-shard dense vectors plus their sum, exercising
// the adversarial shapes the k-way merge must survive: empty shards,
// single-point shards, negative/deletion weights, and ordinary noisy steps.
func mergeFixture(t *testing.T, r *rng.RNG, n, m int) (shards [][]float64, sum []float64) {
	t.Helper()
	sum = make([]float64, n)
	shards = make([][]float64, m)
	for s := range shards {
		q := make([]float64, n)
		switch s % 4 {
		case 0: // empty shard: the zero summary
		case 1: // single-point shard
			q[r.Intn(n)] = 5 + r.Float64()
		case 2: // deletions: net-negative mass on a band
			lo := r.Intn(n / 2)
			for i := lo; i < lo+n/4; i++ {
				q[i] = -1 - r.Float64()
			}
		default: // noisy steps
			levels := []float64{2, 7, 1, 9}
			for i := range q {
				q[i] = levels[i*len(levels)/n] + 0.3*r.NormFloat64()
			}
		}
		shards[s] = q
		for i, v := range q {
			sum[i] += v
		}
	}
	return shards, sum
}

// summarize fits each shard vector to a k-piece summary.
func summarize(t *testing.T, shards [][]float64, k int, opts core.Options) []*core.Histogram {
	t.Helper()
	hs := make([]*core.Histogram, len(shards))
	for i, q := range shards {
		res, err := core.ConstructHistogram(sparse.FromDense(q), k, opts)
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = res.Histogram
	}
	return hs
}

// pairwiseChain is the legacy oracle: fold the summaries through 2-way
// Merge calls left to right.
func pairwiseChain(t *testing.T, hs []*core.Histogram, k int, opts core.Options) *core.Histogram {
	t.Helper()
	acc := hs[0]
	var err error
	for _, h := range hs[1:] {
		acc, err = Merge(acc, h, k, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

func TestMergeAllTwoWayBitIdenticalToMerge(t *testing.T) {
	// For two summaries the flat sweep IS Merge: outputs must match bit for
	// bit (same refinement, same value order, same recompaction).
	r := rng.New(601)
	for trial := 0; trial < 10; trial++ {
		shards, _ := mergeFixture(t, r, 600, 2)
		hs := summarize(t, shards, 5, core.DefaultOptions())
		want, err := Merge(hs[0], hs[1], 5, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		got, err := MergeAll(hs, 5, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got.NumPieces() != want.NumPieces() {
			t.Fatalf("trial %d: %d pieces vs %d", trial, got.NumPieces(), want.NumPieces())
		}
		gp, wp := got.Pieces(), want.Pieces()
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("trial %d: piece %d = %+v, want %+v", trial, i, gp[i], wp[i])
			}
		}
	}
}

func TestMergeAllAgainstPairwiseOracleAndGuarantee(t *testing.T) {
	// Property test across shard counts spanning the flat sweep and the
	// aggregation tree, on adversarial fixtures (empty shards, single-point
	// shards, negative weights):
	//  - mass is preserved exactly (merging is exact on the refinement),
	//  - within one flat sweep (m ≤ fanout) the result satisfies the
	//    merging guarantee ‖out − sum‖₂ ≤ √(1+δ)·opt_k(sum) against the
	//    exact summed input,
	//  - the tree result stays within a small factor of the pairwise-chain
	//    oracle (it compounds ⌈log m⌉ recompactions, the chain m−1).
	r := rng.New(607)
	n, k := 240, 4
	opts := core.DefaultOptions() // δ = 1 → guarantee factor √2
	for _, m := range []int{1, 3, 5, 8, 17, 40} {
		shards, sumShards := mergeFixture(t, r, n, m)
		hs := summarize(t, shards, k, opts)

		// The merged target: the sum of the *summaries* (what MergeAll
		// actually combines — each summary already differs from its shard
		// vector by its own fit error).
		sumSummaries := make([]float64, n)
		for _, h := range hs {
			for i := 1; i <= n; i++ {
				sumSummaries[i-1] += h.At(i)
			}
		}
		_ = sumShards

		all, err := MergeAll(hs, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		chain := pairwiseChain(t, hs, k, opts)

		var wantMass float64
		for _, h := range hs {
			wantMass += h.Mass()
		}
		if !numeric.AlmostEqual(all.Mass(), wantMass, 1e-9) {
			t.Fatalf("m=%d: MergeAll mass %v, want %v", m, all.Mass(), wantMass)
		}

		errAll := all.L2DistToDense(sumSummaries)
		errChain := chain.L2DistToDense(sumSummaries)
		if m <= 8 {
			// Single recompaction: the paper's guarantee applies verbatim.
			_, opt, err := baseline.ExactDP(sumSummaries, k)
			if err != nil {
				t.Fatal(err)
			}
			if errAll > math.Sqrt2*opt+1e-9 {
				t.Fatalf("m=%d: MergeAll error %v breaks the √2·opt_k=%v merging guarantee", m, errAll, opt)
			}
		}
		if errAll > 3*errChain+1e-9 {
			t.Fatalf("m=%d: MergeAll error %v far above pairwise-chain oracle %v", m, errAll, errChain)
		}
	}
}

func TestMergeAllBitIdenticalAcrossWorkers(t *testing.T) {
	// The aggregation tree's grouping is a pure function of the input
	// count, so the result must be bit-identical for every worker count.
	r := rng.New(613)
	shards, _ := mergeFixture(t, r, 500, 40)
	var ref *core.Histogram
	for _, w := range []int{1, 2, 8} {
		opts := core.DefaultOptions()
		opts.Workers = w
		hs := summarize(t, shards, 6, opts)
		got, err := MergeAll(hs, 6, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if got.NumPieces() != ref.NumPieces() {
			t.Fatalf("workers=%d: %d pieces vs %d", w, got.NumPieces(), ref.NumPieces())
		}
		gp, rp := got.Pieces(), ref.Pieces()
		for i := range gp {
			if gp[i] != rp[i] {
				t.Fatalf("workers=%d: piece %d = %+v, want %+v", w, i, gp[i], rp[i])
			}
		}
	}
}

func TestMergeAllAgainstSerialMaintainerOnConcatenatedStream(t *testing.T) {
	// Feed m disjoint update streams to m Maintainers and MergeAll their
	// summaries; feed the concatenation to one serial Maintainer. Both are
	// approximations of the same final vector and both must satisfy the
	// same drift bound against it — the sharded path gives up nothing
	// beyond the serial maintenance guarantee.
	r := rng.New(617)
	n, k, m := 1500, 6, 5
	truth := make([]float64, n)
	type upd struct {
		p int
		w float64
	}
	streams := make([][]upd, m)
	for s := range streams {
		if s == 2 {
			continue // an empty shard stream
		}
		count := 3000 + r.Intn(2000)
		for u := 0; u < count; u++ {
			p := 1 + r.Intn(n)
			w := r.Float64() * 2
			if r.Float64() < 0.15 {
				w = -w // deletions
			}
			streams[s] = append(streams[s], upd{p, w})
			truth[p-1] += w
		}
	}

	perShard := make([]*core.Histogram, 0, m)
	serial, err := NewMaintainer(n, k, 128, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range streams {
		sm, err := NewMaintainer(n, k, 128, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range st {
			if err := sm.Add(u.p, u.w); err != nil {
				t.Fatal(err)
			}
			if err := serial.Add(u.p, u.w); err != nil {
				t.Fatal(err)
			}
		}
		h, err := sm.Summary()
		if err != nil {
			t.Fatal(err)
		}
		perShard = append(perShard, h)
	}
	merged, err := MergeAll(perShard, k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	serialH, err := serial.Summary()
	if err != nil {
		t.Fatal(err)
	}

	if !numeric.AlmostEqual(merged.Mass(), serialH.Mass(), 1e-6) {
		t.Fatalf("merged mass %v vs serial %v", merged.Mass(), serialH.Mass())
	}
	direct, err := core.ConstructHistogram(sparse.FromDense(truth), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mergedErr := merged.L2DistToDense(truth)
	serialErr := serialH.L2DistToDense(truth)
	bound := 3*direct.Error + 1e-9
	if serialErr > bound {
		t.Fatalf("serial maintainer error %v vs direct %v — baseline drift bound broken", serialErr, direct.Error)
	}
	if mergedErr > bound {
		t.Fatalf("MergeAll error %v vs direct %v — sharded drift bound broken (serial: %v)",
			mergedErr, direct.Error, serialErr)
	}
}

func TestMergeAllValidation(t *testing.T) {
	if _, err := MergeAll(nil, 2, core.DefaultOptions()); err == nil {
		t.Fatal("empty input should error")
	}
	a, err := core.ConstructHistogram(sparse.FromDense([]float64{1, 2}), 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.ConstructHistogram(sparse.FromDense([]float64{1, 2, 3}), 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeAll([]*core.Histogram{a.Histogram, b.Histogram}, 1, core.DefaultOptions()); err == nil {
		t.Fatal("domain mismatch should error")
	}
	// A single summary round-trips through the sweep + no-op recompaction.
	one, err := MergeAll([]*core.Histogram{b.Histogram}, 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if !numeric.AlmostEqual(one.At(i), b.Histogram.At(i), 1e-12) {
			t.Fatalf("single-summary MergeAll changed value at %d", i)
		}
	}
}
