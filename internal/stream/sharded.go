package stream

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// Sharded is the multi-core ingestion engine: point updates hash across P
// per-core shards, each an independently compacting Maintainer behind its
// own mutex, so concurrent producers contend only when they land on the
// same shard — and then only for the duration of a slice append.
//
// Compaction runs OFF the ingest path: every shard owns a double-buffered
// update log. When the active buffer fills it is handed to a background
// goroutine that folds it into the shard summary (dedup + refinement + one
// merging run) while producers keep appending to the other buffer. Add
// therefore never blocks on a merging run unless compaction falls a full
// buffer behind — those stalls are the "compaction pauses" Stats reports.
//
// The global summary is produced on demand by MergeAll: one sweep over the
// per-shard summaries' common refinement plus one recompaction (with a
// parallel aggregation tree beyond mergeFanout shards), so every Sharded
// summary carries the same merging guarantee a serial Maintainer certifies
// for its summarized stream.
//
// Determinism: hashing routes each point to a fixed shard, so for a fixed
// shard count a single producer feeding a fixed update order yields
// bit-identical global summaries across runs — background compaction
// changes *when* work happens, never its inputs. With concurrent producers
// the per-shard arrival order (and hence the floating-point dedup order) is
// scheduling-dependent, as for any concurrent aggregator.
//
// All methods are safe for concurrent use.
type Sharded struct {
	n, k   int
	opts   core.Options
	shards []*ingestShard
	// epoch identifies this engine instance for delta replication: version
	// counters are process-local and restart from zero, so a replica must
	// never compare vectors across two engine lives. Every construction path
	// (fresh, restored, delta-built) draws a fresh random epoch; a replica
	// seeing an unfamiliar epoch falls back to a full sync.
	epoch uint64
	// batchScratch recycles AddBatch's per-shard scatter buffers across
	// calls (and across concurrent batching producers).
	batchScratch sync.Pool
	// windowEpochs is the sliding-window span in epochs of a windowed engine
	// (every shard maintainer carries a ring of that span); 0 when plain.
	windowEpochs int
}

// ingestShard is one intake lane: the striped mutex, the double-buffered
// update log, and the shard's Maintainer (summary + compaction scratch).
type ingestShard struct {
	mu   sync.Mutex
	cond sync.Cond // broadcast when a background compaction finishes

	// active is the log producers append to (guarded by mu).
	active []sparse.Entry
	// spare is the idle half of the double buffer; nil exactly while a
	// background compaction owns the other half.
	spare []sparse.Entry
	// inflight is the log the background compaction is folding. Readers
	// under mu may scan it (the compaction only reads it too); it is reset
	// to nil when the compaction installs.
	inflight []sparse.Entry
	// compacting is true while a background compaction goroutine runs.
	compacting bool
	// err is the first background-compaction error; it poisons the shard
	// (all subsequent operations return it).
	err error

	// m holds the shard summary and compaction scratch. While compacting
	// is true the background goroutine owns m's scratch exclusively;
	// readers under mu may still serve m's installed view, because stageLog
	// writes only the double-buffered halves the view is not reading and
	// installStaged runs under mu.
	m *Maintainer
	// bufCap is the flush threshold. Compared against len(active), not
	// cap(active): a producer appending while another waits out a
	// compaction stall can grow the log past its initial capacity, and a
	// cap-based threshold would then ratchet the compaction period upward
	// permanently.
	bufCap int

	updates int
	// version counts state changes observable through a checkpoint capture:
	// it bumps on every pending-log mutation (Add/AddBatch append, delta
	// apply) and on every compaction install (background or synchronous
	// drain). Delta replication ships a shard exactly when its version moved
	// since the replica's last sync, so the counter must change iff the
	// captured (view, pending log, counters) tuple could have.
	version uint64

	pauses   durRing // Add-side stalls waiting for a free log buffer
	compacts durRing // background compaction durations
}

// NewSharded builds a sharded maintainer over [1, n] targeting k-piece
// global summaries. shards ≤ 0 picks one shard per core (GOMAXPROCS);
// bufferCap is the per-shard compaction period (0 picks the same default as
// NewMaintainer). opts.Workers additionally parallelizes the merging runs
// themselves and the Summary aggregation tree.
func NewSharded(n, k, shards, bufferCap int, opts core.Options) (*Sharded, error) {
	p := parallel.Resolve(shards)
	s := &Sharded{n: n, k: k, opts: opts, shards: make([]*ingestShard, p), epoch: newEpoch()}
	for i := range s.shards {
		m, err := newMaintainer(n, k, bufferCap, opts)
		if err != nil {
			return nil, err
		}
		sh := &ingestShard{
			active: make([]sparse.Entry, 0, m.bufferCap),
			spare:  make([]sparse.Entry, 0, m.bufferCap),
			m:      m,
			bufCap: m.bufferCap,
		}
		sh.cond.L = &sh.mu
		s.shards[i] = sh
	}
	s.batchScratch.New = func() any {
		return &batchScratch{per: make([][]sparse.Entry, p)}
	}
	return s, nil
}

// newEpoch draws a random engine-instance identifier. Collisions across a
// fleet would merely delay convergence by one full sync, so 64 random bits
// are plenty; zero is reserved as "no epoch known".
func newEpoch() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; here a fixed
		// nonzero epoch only costs replicas a spurious full sync.
		return 1
	}
	e := binary.LittleEndian.Uint64(b[:])
	if e == 0 {
		e = 1
	}
	return e
}

// Shards returns the shard count P.
func (s *Sharded) Shards() int { return len(s.shards) }

// Epoch identifies this engine instance for delta replication. Shard version
// counters are only comparable within one epoch; a restored or rebuilt engine
// carries a fresh epoch, telling replicas their tracked vectors are stale.
func (s *Sharded) Epoch() uint64 { return s.epoch }

// Versions appends every shard's current version counter to dst (reset to
// length zero first) and returns it — the engine's fleet version vector.
// Each counter is read under its shard lock, so vector entry i is exactly
// the version a checkpoint capturing shard i at that moment would record.
func (s *Sharded) Versions(dst []uint64) []uint64 {
	dst = dst[:0]
	for _, sh := range s.shards {
		sh.mu.Lock()
		dst = append(dst, sh.version)
		sh.mu.Unlock()
	}
	return dst
}

// ShardOf returns the shard index point i routes to — exported so benchmarks
// and replication tests can construct workloads that touch a chosen subset of
// shards. Routing is a pure function of (i, shard count).
func (s *Sharded) ShardOf(i int) int { return s.shardFor(i) }

// shardFor routes a point to its shard: Fibonacci hashing spreads
// consecutive points across shards (so a hot band doesn't serialize on one
// lock) while keeping every update of one point on one shard (so dedup and
// refinement singletons stay shard-local). Pure function of (i, P): routing
// is deterministic across runs.
func (s *Sharded) shardFor(i int) int {
	h := uint64(i) * 0x9e3779b97f4a7c15
	return int((h >> 33) % uint64(len(s.shards)))
}

// Add records an update: the frequency of point i increases by w (negative
// w deletes). It appends to the target shard's active log under the shard
// lock and returns immediately; compaction happens in the background.
func (s *Sharded) Add(i int, w float64) error {
	if i < 1 || i > s.n {
		return fmt.Errorf("stream: point %d out of [1, %d]", i, s.n)
	}
	sh := s.shards[s.shardFor(i)]
	sh.mu.Lock()
	err := sh.addLocked(sparse.Entry{Index: i, Value: w})
	sh.mu.Unlock()
	return err
}

// batchScratch is AddBatch's pooled scatter area: one staging slice per
// shard, capacities retained across calls.
type batchScratch struct {
	per [][]sparse.Entry
}

// AddBatch records points[i] += weights[i] for every i (nil weights = unit
// weight). The batch is validated up front, scattered by shard into pooled
// staging buffers, and appended to each touched shard with ONE lock
// acquisition per shard — the no-cross-shard-contention bulk path: P
// producers ingesting batches touch each shard lock once per batch instead
// of once per update.
func (s *Sharded) AddBatch(points []int, weights []float64) error {
	if weights != nil && len(weights) != len(points) {
		return fmt.Errorf("stream: %d weights for %d points", len(weights), len(points))
	}
	for _, p := range points {
		if p < 1 || p > s.n {
			return fmt.Errorf("stream: point %d out of [1, %d]", p, s.n)
		}
	}
	bs := s.batchScratch.Get().(*batchScratch)
	w := 1.0
	for i, p := range points {
		if weights != nil {
			w = weights[i]
		}
		si := s.shardFor(p)
		bs.per[si] = append(bs.per[si], sparse.Entry{Index: p, Value: w})
	}
	var firstErr error
	for si, entries := range bs.per {
		if len(entries) == 0 {
			continue
		}
		if firstErr == nil {
			sh := s.shards[si]
			sh.mu.Lock()
			firstErr = sh.addBatchLocked(entries)
			sh.mu.Unlock()
		}
		bs.per[si] = entries[:0]
	}
	s.batchScratch.Put(bs)
	return firstErr
}

func (sh *ingestShard) addLocked(e sparse.Entry) error {
	if sh.err != nil {
		return sh.err
	}
	sh.active = append(sh.active, e)
	sh.updates++
	sh.version++
	if len(sh.active) >= sh.bufCap {
		sh.flushLocked()
	}
	return sh.err
}

func (sh *ingestShard) addBatchLocked(es []sparse.Entry) error {
	if sh.err != nil {
		return sh.err
	}
	for len(es) > 0 {
		room := sh.bufCap - len(sh.active)
		if room > len(es) {
			room = len(es)
		}
		if room > 0 {
			sh.active = append(sh.active, es[:room]...)
			sh.updates += room
			sh.version++
			es = es[room:]
		}
		if len(sh.active) >= sh.bufCap {
			sh.flushLocked()
			if sh.err != nil {
				return sh.err
			}
		}
	}
	return nil
}

// flushLocked hands the filled active log to a background compaction and
// swaps in the spare buffer. If the previous compaction is still running —
// intake is a full buffer ahead of compaction — it waits for it first;
// that wait is the only way ingest ever blocks on a merging run, and its
// duration is recorded as a pause.
func (sh *ingestShard) flushLocked() {
	if len(sh.active) == 0 || sh.err != nil {
		return
	}
	if sh.compacting {
		start := time.Now()
		for sh.compacting {
			sh.cond.Wait()
		}
		sh.pauses.add(time.Since(start))
		if sh.err != nil {
			return
		}
		// Re-check: another producer waiting on the same stall may have
		// flushed the log we came for while we slept. Only a still-full
		// active buffer is worth a merging run — flushing the fresh
		// sub-capacity log would shorten the compaction period and waste a
		// run on (possibly zero) entries.
		if len(sh.active) < sh.bufCap {
			return
		}
	}
	full := sh.active
	sh.active = sh.spare[:0]
	sh.spare = nil
	sh.inflight = full
	sh.compacting = true
	go sh.backgroundCompact(full)
}

// backgroundCompact folds one log into the shard summary off the ingest
// path: the heavy stage runs without the lock (readers keep serving the old
// view; producers keep filling the other buffer), then the O(1) install and
// buffer recycling run under it.
func (sh *ingestShard) backgroundCompact(log []sparse.Entry) {
	start := time.Now()
	err := sh.m.stageLog(log)
	sh.mu.Lock()
	if err != nil {
		if sh.err == nil {
			sh.err = err
		}
	} else {
		sh.m.installStaged()
		// The install changes the captured state (view swapped, in-flight
		// log absorbed) without any producer action, so it must bump the
		// version for delta replication to ship the compacted form.
		sh.version++
	}
	sh.compacts.add(time.Since(start))
	sh.spare = log[:0]
	sh.inflight = nil
	sh.compacting = false
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// drainLocked waits out any background compaction and folds the remaining
// active log synchronously, leaving the shard's installed view up to date.
func (sh *ingestShard) drainLocked() error {
	for sh.compacting {
		sh.cond.Wait()
	}
	if sh.err != nil {
		return sh.err
	}
	if len(sh.active) > 0 {
		if err := sh.m.compactLog(sh.active); err != nil {
			sh.err = err
			return err
		}
		sh.active = sh.active[:0]
		sh.version++
	}
	return nil
}

// EstimateRange returns the maintained vector's sum over [a, b]: installed
// per-shard summary mass plus every pending update (active log and any log
// currently being folded), so no mass is ever missing or double-counted.
// It never forces or waits for a compaction — cost per shard is
// O(log pieces) plus a scan of that shard's pending updates (O(2·bufferCap)
// worst case).
func (s *Sharded) EstimateRange(a, b int) (float64, error) {
	if s.windowEpochs > 0 {
		// A windowed engine's plain query covers every retained epoch,
		// undecayed.
		return s.EstimateRangeOver(a, b, 0, 0)
	}
	if a < 1 || b > s.n || a > b {
		return 0, fmt.Errorf("stream: range [%d, %d] invalid for domain [1, %d]", a, b, s.n)
	}
	var total float64
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.err != nil {
			err := sh.err
			sh.mu.Unlock()
			return 0, err
		}
		if !sh.m.view.empty() {
			total += sh.m.view.rangeSum(a, b)
		}
		// The in-flight log is not yet in the view (install happens under
		// this lock) and the compaction only reads it: scanning is safe.
		for _, e := range sh.inflight {
			if a <= e.Index && e.Index <= b {
				total += e.Value
			}
		}
		for _, e := range sh.active {
			if a <= e.Index && e.Index <= b {
				total += e.Value
			}
		}
		sh.mu.Unlock()
	}
	return total, nil
}

// Summary drains every shard (waiting out in-flight compactions, folding
// leftover buffers) and merges the per-shard summaries into one O(k)-piece
// global summary via MergeAll. The result is immutable. Under concurrent
// ingestion the snapshot is per-shard consistent: each shard contributes
// every update it had absorbed when visited.
func (s *Sharded) Summary() (*core.Histogram, error) {
	if s.windowEpochs > 0 {
		// A windowed engine's plain summary covers every retained epoch,
		// undecayed.
		return s.SummaryOver(0, 0)
	}
	hs := make([]*core.Histogram, 0, len(s.shards))
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.drainLocked()
		var h *core.Histogram
		if err == nil && !sh.m.view.empty() {
			h = sh.m.materialize()
		}
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if h != nil {
			hs = append(hs, h)
		}
	}
	if len(hs) == 0 {
		// No shard has compacted mass: the zero histogram.
		return core.NewHistogram(s.n,
			interval.Partition{interval.New(1, s.n)}, []float64{0}), nil
	}
	return MergeAll(hs, s.k, s.opts)
}

// Updates returns the total number of updates ingested across shards.
func (s *Sharded) Updates() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.updates
		sh.mu.Unlock()
	}
	return total
}

// Compactions returns the total number of compactions run across shards.
func (s *Sharded) Compactions() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.m.compactions
		sh.mu.Unlock()
	}
	return total
}

// IngestStats is a point-in-time snapshot of the engine's ingestion
// behaviour — the raw material of the ingest benchmark's throughput and
// pause-percentile cells.
type IngestStats struct {
	Shards      int
	Updates     int
	Compactions int
	// PauseCount is the exact total number of ingest stalls: times
	// Add/AddBatch waited because compaction was a full buffer behind.
	// Zero when compaction keeps up — the "Add never blocks on a merging
	// run" steady state.
	PauseCount int
	// CompactionDurations holds the most recent compaction durations: the
	// work per flushed buffer, up to 512 background plus 512 synchronous
	// drain compactions per shard (two rings). Percentiles computed from
	// it cover that recent window, while Compactions counts every event.
	CompactionDurations []time.Duration
	// Pauses holds the most recent ingest-stall durations (up to 512 per
	// shard); PauseCount carries the exact total.
	Pauses []time.Duration
}

// Stats snapshots the ingestion counters and recent durations.
func (s *Sharded) Stats() IngestStats {
	st := IngestStats{Shards: len(s.shards)}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Updates += sh.updates
		st.Compactions += sh.m.compactions
		st.PauseCount += sh.pauses.count()
		st.CompactionDurations = sh.compacts.snapshot(st.CompactionDurations)
		st.CompactionDurations = sh.m.compactDur.snapshot(st.CompactionDurations)
		st.Pauses = sh.pauses.snapshot(st.Pauses)
		sh.mu.Unlock()
	}
	return st
}
