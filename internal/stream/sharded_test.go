package stream

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, 1, 2, 0, core.DefaultOptions()); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewSharded(10, 0, 2, 0, core.DefaultOptions()); err == nil {
		t.Fatal("k=0 should error")
	}
	s, err := NewSharded(10, 2, 3, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", s.Shards())
	}
	if err := s.Add(0, 1); err == nil {
		t.Fatal("point 0 should error")
	}
	if err := s.Add(11, 1); err == nil {
		t.Fatal("point 11 should error")
	}
	if err := s.AddBatch([]int{1, 99}, nil); err == nil {
		t.Fatal("batch with out-of-range point should error")
	}
	if err := s.AddBatch([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("weights length mismatch should error")
	}
	if _, err := s.EstimateRange(0, 5); err == nil {
		t.Fatal("invalid range should error")
	}
	if _, err := s.EstimateRange(7, 3); err == nil {
		t.Fatal("reversed range should error")
	}
}

func TestShardedEmptySummary(t *testing.T) {
	s, err := NewSharded(100, 3, 4, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if h.Mass() != 0 || h.NumPieces() != 1 {
		t.Fatal("empty sharded maintainer should summarize to the zero histogram")
	}
}

func TestShardedMassExactAndDriftBound(t *testing.T) {
	// Mass is preserved exactly through hashing, background compactions and
	// the k-way merge, and the global summary stays within the same drift
	// bound vs the true vector the serial maintainer certifies.
	r := rng.New(701)
	n, k := 2000, 10
	s, err := NewSharded(n, k, 4, 128, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, n)
	levels := []float64{1, 6, 3, 9, 2, 8, 4, 10, 5, 7}
	for u := 0; u < 60000; u++ {
		for {
			p := 1 + r.Intn(n)
			if r.Float64()*10 < levels[(p-1)*10/n] {
				truth[p-1]++
				if err := s.Add(p, 1); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	h, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range truth {
		total += v
	}
	if !numeric.AlmostEqual(h.Mass(), total, 1e-9) {
		t.Fatalf("summary mass %v, stream total %v", h.Mass(), total)
	}
	direct, err := core.ConstructHistogram(sparse.FromDense(truth), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.L2DistToDense(truth); got > 3*direct.Error+1e-9 {
		t.Fatalf("sharded summary error %v vs direct fit %v — drift too large", got, direct.Error)
	}
	if s.Updates() != 60000 {
		t.Fatalf("Updates() = %d", s.Updates())
	}
	if s.Compactions() == 0 {
		t.Fatal("expected background compactions")
	}
	st := s.Stats()
	if st.Updates != 60000 || st.Compactions == 0 || len(st.CompactionDurations) == 0 {
		t.Fatalf("stats snapshot incomplete: %+v", st)
	}
}

func TestShardedDeterministicAcrossRuns(t *testing.T) {
	// Fixed shard count + fixed single-producer update order must yield a
	// bit-identical global summary on every run: hashing is seedless,
	// per-shard compaction boundaries depend only on arrival order, and
	// MergeAll's tree is scheduling-independent.
	run := func() *core.Histogram {
		r := rng.New(709)
		s, err := NewSharded(800, 6, 3, 64, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		batchP := make([]int, 0, 100)
		batchW := make([]float64, 0, 100)
		for i := 0; i < 5000; i++ {
			p, w := 1+r.Intn(800), r.NormFloat64()
			if i%3 == 0 {
				batchP = append(batchP, p)
				batchW = append(batchW, w)
				if len(batchP) == 100 {
					if err := s.AddBatch(batchP, batchW); err != nil {
						t.Fatal(err)
					}
					batchP, batchW = batchP[:0], batchW[:0]
				}
			} else if err := s.Add(p, w); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AddBatch(batchP, batchW); err != nil {
			t.Fatal(err)
		}
		h, err := s.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := run(), run()
	if h1.NumPieces() != h2.NumPieces() {
		t.Fatalf("piece counts differ: %d vs %d", h1.NumPieces(), h2.NumPieces())
	}
	p1, p2 := h1.Pieces(), h2.Pieces()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("piece %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

func TestShardedAddBatchMatchesAdd(t *testing.T) {
	// One producer, same update sequence: batch and single-update ingestion
	// hit identical per-shard logs and compaction boundaries, so the global
	// summaries are bit-identical.
	build := func(batch bool) *core.Histogram {
		r := rng.New(719)
		s, err := NewSharded(600, 5, 4, 64, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		points := make([]int, 4000)
		weights := make([]float64, 4000)
		for i := range points {
			points[i], weights[i] = 1+r.Intn(600), r.Float64()
		}
		if batch {
			for lo := 0; lo < len(points); lo += 512 {
				hi := min(lo+512, len(points))
				if err := s.AddBatch(points[lo:hi], weights[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := range points {
				if err := s.Add(points[i], weights[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		h, err := s.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hb, ha := build(true), build(false)
	if hb.NumPieces() != ha.NumPieces() {
		t.Fatalf("batch %d pieces vs single %d", hb.NumPieces(), ha.NumPieces())
	}
	pb, pa := hb.Pieces(), ha.Pieces()
	for i := range pb {
		if pb[i] != pa[i] {
			t.Fatalf("piece %d differs: batch %+v vs single %+v", i, pb[i], pa[i])
		}
	}
}

func TestShardedSingleShardMatchesSerialMaintainer(t *testing.T) {
	// P=1 routes everything through one shard with the serial Maintainer's
	// exact compaction cadence; the only extra step is the final MergeAll
	// recompaction, which on an already-compacted summary is a no-op up to
	// one mean-of-flat-interval rounding per piece.
	r := rng.New(727)
	s, err := NewSharded(500, 6, 1, 128, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaintainer(500, 6, 128, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		p, w := 1+r.Intn(500), r.NormFloat64()
		if err := s.Add(p, w); err != nil {
			t.Fatal(err)
		}
		if err := m.Add(p, w); err != nil {
			t.Fatal(err)
		}
	}
	hs, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	hm, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if hs.NumPieces() != hm.NumPieces() {
		t.Fatalf("P=1 sharded %d pieces vs serial %d", hs.NumPieces(), hm.NumPieces())
	}
	ps, pm := hs.Pieces(), hm.Pieces()
	for i := range ps {
		if ps[i].Interval != pm[i].Interval {
			t.Fatalf("piece %d interval %v vs %v", i, ps[i].Interval, pm[i].Interval)
		}
		if math.Abs(ps[i].Value-pm[i].Value) > 1e-12*(1+math.Abs(pm[i].Value)) {
			t.Fatalf("piece %d value %v vs %v", i, ps[i].Value, pm[i].Value)
		}
	}
}

func TestShardedDeletions(t *testing.T) {
	s, err := NewSharded(50, 2, 4, 16, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := s.Add(i, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 50; i++ {
		if err := s.Add(i, -2); err != nil {
			t.Fatal(err)
		}
	}
	h, err := s.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mass()) > 1e-9 {
		t.Fatalf("mass after full deletion %v", h.Mass())
	}
}

func TestShardedEstimateRangeSeesAllPendingMass(t *testing.T) {
	// At every checkpoint of the stream, EstimateRange(1, n) must equal the
	// mass ingested so far exactly (unit weights → exact float sums): no
	// update may be lost or double-counted across the active log, the
	// in-flight log, and the installed summary.
	r := rng.New(733)
	n := 400
	s, err := NewSharded(n, 4, 3, 32, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 5000; u++ {
		if err := s.Add(1+r.Intn(n), 1); err != nil {
			t.Fatal(err)
		}
		if u%937 == 0 {
			got, err := s.EstimateRange(1, n)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-float64(u)) > 1e-6 {
				t.Fatalf("after %d unit updates EstimateRange(1, n) = %v", u, got)
			}
		}
	}
	// Narrow ranges against a serial maintainer fed the same stream would
	// differ only by compaction drift; the zero-drift check: a point that
	// was never touched reports mass only from flattening drift, bounded by
	// the summary error. Keep to the exact global invariant here.
}

func TestShardedFlushThresholdSurvivesBufferGrowth(t *testing.T) {
	// A producer appending while another waits out a compaction stall can
	// grow the active log beyond its initial capacity. The flush threshold
	// must stay the configured bufferCap — a cap()-based threshold would
	// ratchet the compaction period upward permanently.
	const bufCap = 32
	s, err := NewSharded(1000, 4, 1, bufCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sh := s.shards[0]
	// Simulate the post-stall state: the cycled buffer has grown.
	sh.mu.Lock()
	grown := make([]sparse.Entry, 0, 4*bufCap)
	sh.active = append(grown, sh.active...)
	sh.mu.Unlock()
	for i := 0; i < bufCap; i++ {
		if err := s.Add(1+i, 1); err != nil {
			t.Fatal(err)
		}
	}
	sh.mu.Lock()
	for sh.compacting {
		sh.cond.Wait()
	}
	compactions := sh.m.compactions
	pending := len(sh.active)
	sh.mu.Unlock()
	if compactions != 1 {
		t.Fatalf("after bufferCap updates on a grown buffer: %d compactions, want 1", compactions)
	}
	if pending != 0 {
		t.Fatalf("%d updates left unflushed past the bufferCap threshold", pending)
	}
}

func TestShardedConcurrent(t *testing.T) {
	// The race-detector workout (CI runs the suite under -race): concurrent
	// Add / AddBatch / EstimateRange / Summary / Stats across worker counts.
	// Unit weights keep every float sum exact, so the final mass must equal
	// the total update count regardless of interleaving.
	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(map[int]string{1: "workers=1", 2: "workers=2", 8: "workers=8"}[workers], func(t *testing.T) {
			t.Parallel()
			const perWorker = 6000
			n := 1000
			s, err := NewSharded(n, 8, 4, 64, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					r := rng.New(1000 + seed)
					batch := make([]int, 0, 128)
					sent := 0
					for sent < perWorker {
						switch r.Intn(10) {
						case 0: // a batch
							batch = batch[:0]
							bn := min(128, perWorker-sent)
							for i := 0; i < bn; i++ {
								batch = append(batch, 1+r.Intn(n))
							}
							if err := s.AddBatch(batch, nil); err != nil {
								t.Error(err)
								return
							}
							sent += bn
						case 1: // a read
							if _, err := s.EstimateRange(1+r.Intn(n/2), n/2+r.Intn(n/2)); err != nil {
								t.Error(err)
								return
							}
						case 2:
							if r.Intn(20) == 0 { // occasional full snapshot
								if _, err := s.Summary(); err != nil {
									t.Error(err)
									return
								}
							} else {
								_ = s.Stats()
							}
						default:
							if err := s.Add(1+r.Intn(n), 1); err != nil {
								t.Error(err)
								return
							}
							sent++
						}
					}
				}(uint64(workers*100 + w))
			}
			wg.Wait()
			h, err := s.Summary()
			if err != nil {
				t.Fatal(err)
			}
			want := float64(workers * perWorker)
			if math.Abs(h.Mass()-want) > 1e-6 {
				t.Fatalf("final mass %v, want %v", h.Mass(), want)
			}
		})
	}
}
