package stream

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/sparse"
)

// This file implements checkpoint/restore for the streaming intake engines:
// a Maintainer or Sharded can be snapshotted mid-stream — summary views AND
// the pending (uncompacted) update logs — and restored in a fresh process
// that resumes bit-identically: the restored engine produces the same
// summaries, the same EstimateRange answers, and the same future compaction
// groupings as the uninterrupted run, because a snapshot never forces a
// compaction (that would change when merging runs happen and therefore what
// they see).
//
// What is persisted: configuration (n, k, options, buffer capacity, shard
// count), the installed summary view per maintainer (partition, values,
// certified error — prefix masses are derived and rebuilt in the same
// accumulation order, hence bit-identically), the pending update log in
// arrival order (dedup order is part of the floating-point semantics), and
// the updates/compactions counters. Timing telemetry (compaction/pause
// duration rings) is not state and starts empty after a restore.

// encodeConfig writes the engine configuration shared by both checkpoint
// payloads.
func encodeConfig(w *codec.Writer, n, k int, opts core.Options, bufferCap int) {
	w.Int(n)
	w.Int(k)
	w.Float64(opts.Delta)
	w.Float64(opts.Gamma)
	w.Varint(int64(opts.Workers))
	w.Int(bufferCap)
}

func decodeConfig(r *codec.Reader) (n, k int, opts core.Options, bufferCap int, err error) {
	if n, err = r.Int(); err != nil {
		return
	}
	if k, err = r.Int(); err != nil {
		return
	}
	if opts.Delta, err = r.FiniteFloat64(); err != nil {
		return
	}
	if opts.Gamma, err = r.FiniteFloat64(); err != nil {
		return
	}
	var workers int64
	if workers, err = r.Varint(); err != nil {
		return
	}
	opts.Workers = int(workers)
	if bufferCap, err = r.Int(); err != nil {
		return
	}
	if n < 1 || k < 1 {
		err = fmt.Errorf("stream: checkpoint with n=%d, k=%d", n, k)
		return
	}
	if err = opts.Validate(); err != nil {
		return
	}
	if bufferCap < 1 {
		err = fmt.Errorf("stream: checkpoint with buffer capacity %d", bufferCap)
	}
	return
}

// maintainerState is one maintainer's snapshot-relevant state in flat form:
// the installed view, the counters, and a pending update log (the
// Maintainer's own buffer, or the owning shard's active log).
type maintainerState struct {
	updates     int
	compactions int
	hasView     bool
	ends        []int
	values      []float64
	viewErr     float64
	log         []sparse.Entry
	// ring is the sealed-epoch ring of a windowed maintainer (nil when
	// plain). It is NOT part of encode/decode — that layout is frozen for
	// TagMaintainer/TagSharded; the windowed envelope writes the ring as a
	// suffix after each state (see windowsnap.go).
	ring *capturedRing
}

// captureState copies the maintainer's snapshot-relevant state. The copies
// make the capture safe to encode after the owner's lock is released: the
// view's backing arrays are double-buffered compaction scratch that the next
// compaction recycles.
func captureState(m *Maintainer, log []sparse.Entry) maintainerState {
	st := maintainerState{
		updates:     m.updates,
		compactions: m.compactions,
		hasView:     !m.view.empty(),
		log:         append([]sparse.Entry(nil), log...),
		ring:        captureRing(m),
	}
	if st.hasView {
		st.ends = m.view.part.Boundaries()
		st.values = append([]float64(nil), m.view.values...)
		st.viewErr = m.view.err
	}
	return st
}

func (st *maintainerState) encode(w *codec.Writer) {
	w.Int(st.updates)
	w.Int(st.compactions)
	if st.hasView {
		w.Byte(1)
		w.DeltaInts(st.ends)
		w.PackedFloat64s(st.values)
		w.Float64(st.viewErr)
	} else {
		w.Byte(0)
	}
	w.Int(len(st.log))
	idxs := make([]int, len(st.log))
	vals := make([]float64, len(st.log))
	for i, e := range st.log {
		idxs[i] = e.Index
		vals[i] = e.Value
	}
	for _, idx := range idxs {
		w.Int(idx)
	}
	w.PackedFloat64s(vals)
}

func decodeState(r *codec.Reader, n int) (maintainerState, error) {
	var st maintainerState
	var err error
	if st.updates, err = r.Int(); err != nil {
		return st, err
	}
	if st.compactions, err = r.Int(); err != nil {
		return st, err
	}
	flag, err := r.ReadByte()
	if err != nil {
		return st, err
	}
	switch flag {
	case 0:
	case 1:
		st.hasView = true
		if st.ends, err = r.DeltaInts(); err != nil {
			return st, err
		}
		if st.values, err = r.PackedFloat64s(); err != nil {
			return st, err
		}
		if len(st.values) != len(st.ends) {
			return st, fmt.Errorf("stream: %d view values for %d pieces", len(st.values), len(st.ends))
		}
		if st.viewErr, err = r.FiniteFloat64(); err != nil {
			return st, err
		}
		if st.viewErr < 0 {
			return st, fmt.Errorf("stream: negative summary error %v", st.viewErr)
		}
	default:
		return st, fmt.Errorf("stream: bad view flag %d", flag)
	}
	logLen, err := r.SliceLen()
	if err != nil {
		return st, err
	}
	idxs := make([]int, logLen)
	for i := range idxs {
		if idxs[i], err = r.Int(); err != nil {
			return st, err
		}
		if idxs[i] < 1 || idxs[i] > n {
			return st, fmt.Errorf("stream: buffered point %d out of [1, %d]", idxs[i], n)
		}
	}
	vals, err := r.PackedFloat64s()
	if err != nil {
		return st, err
	}
	if len(vals) != logLen {
		return st, fmt.Errorf("stream: %d buffered values for %d points", len(vals), logLen)
	}
	st.log = make([]sparse.Entry, logLen)
	for i := range st.log {
		st.log[i] = sparse.Entry{Index: idxs[i], Value: vals[i]}
	}
	return st, nil
}

// apply installs the decoded state on a freshly constructed maintainer. The
// prefix masses are recomputed with the same left-to-right accumulation
// stageLog uses, so the restored view serves bit-identical range sums.
func (st *maintainerState) apply(m *Maintainer) error {
	m.updates = st.updates
	m.compactions = st.compactions
	if !st.hasView {
		return nil
	}
	part, err := interval.FromBoundaries(m.n, st.ends)
	if err != nil {
		return fmt.Errorf("stream: checkpoint summary: %w", err)
	}
	pre := make([]float64, 0, len(part)+1)
	pre = append(pre, 0)
	for i, iv := range part {
		pre = append(pre, pre[i]+float64(iv.Len())*st.values[i])
	}
	m.prefixBufs[m.curPrefix] = pre
	m.view = summaryView{part: part, values: st.values, prefix: pre, err: st.viewErr}
	return nil
}

// Snapshot writes a checkpoint of the maintainer — summary view plus the
// pending update log, without compacting — as one binary envelope (see
// internal/codec). A maintainer restored from it resumes bit-identically:
// feeding both the original and the restored maintainer the same subsequent
// updates yields identical summaries, compaction cadence, and EstimateRange
// answers.
func (m *Maintainer) Snapshot(w io.Writer) error {
	if m.win != nil {
		return m.snapshotWindowed(w)
	}
	enc := codec.NewWriter(w, codec.TagMaintainer)
	encodeConfig(enc, m.n, m.k, m.opts, m.bufferCap)
	st := captureState(m, m.buffer)
	st.encode(enc)
	return enc.Close()
}

// DecodeMaintainerPayload reads and validates a maintainer checkpoint
// payload (everything between envelope header and footer) and rebuilds the
// maintainer. Exported for the top-level tag dispatcher.
func DecodeMaintainerPayload(dec *codec.Reader) (*Maintainer, error) {
	n, k, opts, bufferCap, err := decodeConfig(dec)
	if err != nil {
		return nil, err
	}
	st, err := decodeState(dec, n)
	if err != nil {
		return nil, err
	}
	m, err := newMaintainer(n, k, bufferCap, opts)
	if err != nil {
		return nil, err
	}
	if err := st.apply(m); err != nil {
		return nil, err
	}
	capHint := m.bufferCap
	if len(st.log) > capHint {
		capHint = len(st.log)
	}
	m.buffer = make([]sparse.Entry, 0, capHint)
	m.buffer = append(m.buffer, st.log...)
	return m, nil
}

// RestoreMaintainer reads a Maintainer checkpoint written by Snapshot and
// rebuilds the maintainer, validating configuration, summary partition, and
// buffered updates as strictly as the JSON decoders validate theirs.
func RestoreMaintainer(r io.Reader) (*Maintainer, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return nil, err
	}
	var m *Maintainer
	switch tag {
	case codec.TagMaintainer:
		m, err = DecodeMaintainerPayload(dec)
	case codec.TagWindowed:
		var v any
		if v, err = DecodeWindowedPayload(dec); err == nil {
			var ok bool
			if m, ok = v.(*Maintainer); !ok {
				return nil, fmt.Errorf("stream: windowed envelope holds a sharded engine, not a maintainer")
			}
		}
	default:
		return nil, fmt.Errorf("stream: envelope holds type tag %d, not a maintainer checkpoint", tag)
	}
	if err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return m, nil
}

// Snapshot writes a checkpoint of the sharded engine as one binary envelope:
// every shard's installed summary view plus its pending update log. It does
// not force any compaction — in-flight background compactions are waited
// out (work the uninterrupted run performs anyway), but buffered updates
// stay buffered, so the restored engine's future compaction groupings (and
// therefore its floating-point results) match the uninterrupted run's
// exactly. Shards are captured one at a time under their locks, giving the
// same per-shard consistency Summary offers under concurrent ingestion.
func (s *Sharded) Snapshot(w io.Writer) error {
	states := make([]maintainerState, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		for sh.compacting {
			sh.cond.Wait()
		}
		if sh.err != nil {
			err := sh.err
			sh.mu.Unlock()
			return err
		}
		states[i] = captureState(sh.m, sh.active)
		states[i].updates = sh.updates
		sh.mu.Unlock()
	}
	if s.windowEpochs > 0 {
		_, err := writeWindowedSharded(w, s.n, s.k, s.opts, s.shards[0].bufCap, s.windowEpochs, states)
		return err
	}
	enc := codec.NewWriter(w, codec.TagSharded)
	encodeConfig(enc, s.n, s.k, s.opts, s.shards[0].bufCap)
	enc.Int(len(states))
	for i := range states {
		states[i].encode(enc)
	}
	return enc.Close()
}

// DecodeShardedPayload reads and validates a sharded checkpoint payload and
// rebuilds the engine. Exported for the top-level tag dispatcher.
func DecodeShardedPayload(dec *codec.Reader) (*Sharded, error) {
	n, k, opts, bufferCap, err := decodeConfig(dec)
	if err != nil {
		return nil, err
	}
	shardCount, err := dec.SliceLen()
	if err != nil {
		return nil, err
	}
	if shardCount < 1 {
		return nil, fmt.Errorf("stream: checkpoint with %d shards", shardCount)
	}
	states := make([]maintainerState, shardCount)
	for i := range states {
		if states[i], err = decodeState(dec, n); err != nil {
			return nil, err
		}
	}
	s, err := NewSharded(n, k, shardCount, bufferCap, opts)
	if err != nil {
		return nil, err
	}
	for i, sh := range s.shards {
		st := &states[i]
		if err := st.apply(sh.m); err != nil {
			return nil, fmt.Errorf("stream: shard %d: %w", i, err)
		}
		sh.updates = st.updates
		if len(st.log) > cap(sh.active) {
			sh.active = make([]sparse.Entry, 0, len(st.log))
		}
		sh.active = append(sh.active[:0], st.log...)
	}
	return s, nil
}

// RestoreSharded reads a Sharded checkpoint written by Snapshot and rebuilds
// the engine with the same shard count (point-to-shard routing is a pure
// function of the shard count, so restored shards continue receiving exactly
// the points they held before).
func RestoreSharded(r io.Reader) (*Sharded, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return nil, err
	}
	var s *Sharded
	switch tag {
	case codec.TagSharded:
		s, err = DecodeShardedPayload(dec)
	case codec.TagWindowed:
		var v any
		if v, err = DecodeWindowedPayload(dec); err == nil {
			var ok bool
			if s, ok = v.(*Sharded); !ok {
				return nil, fmt.Errorf("stream: windowed envelope holds a maintainer, not a sharded engine")
			}
		}
	default:
		return nil, fmt.Errorf("stream: envelope holds type tag %d, not a sharded checkpoint", tag)
	}
	if err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return s, nil
}
