package stream

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// streamFixture returns a deterministic update stream with weighted inserts,
// deletions, and hot points — the adversarial shapes of the maintenance
// setting.
func streamFixture(n, total int, seed uint64) (points []int, weights []float64) {
	r := rng.New(seed)
	points = make([]int, total)
	weights = make([]float64, total)
	for i := range points {
		switch i % 7 {
		case 0: // hot point
			points[i] = 1 + int(r.Uint64()%8)
		default:
			points[i] = 1 + int(r.Uint64()%uint64(n))
		}
		w := r.NormFloat64()
		if i%11 == 0 {
			w = -w // deletions
		}
		weights[i] = w
	}
	return points, weights
}

func histogramsBitIdentical(t *testing.T, got, want *core.Histogram, label string) {
	t.Helper()
	if got.N() != want.N() || got.NumPieces() != want.NumPieces() {
		t.Fatalf("%s: shape n=%d pieces=%d, want n=%d pieces=%d",
			label, got.N(), got.NumPieces(), want.N(), want.NumPieces())
	}
	for i, pc := range want.Pieces() {
		gpc := got.Pieces()[i]
		if gpc.Interval != pc.Interval || math.Float64bits(gpc.Value) != math.Float64bits(pc.Value) {
			t.Fatalf("%s: piece %d = %+v, want %+v", label, i, gpc, pc)
		}
	}
}

func TestMaintainerSnapshotRestoreResumesBitIdentically(t *testing.T) {
	const n, k, total = 5000, 8, 9000
	points, weights := streamFixture(n, total, 1207)

	uninterrupted, err := NewMaintainer(n, k, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	interrupted, err := NewMaintainer(n, k, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Feed the first part to both; cut mid-buffer so the snapshot carries a
	// non-empty pending log.
	cut := total/2 + 17
	for i := 0; i < cut; i++ {
		if err := uninterrupted.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		if err := interrupted.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(interrupted.buffer) == 0 {
		t.Fatal("fixture does not leave a pending buffer at the cut; adjust the cut")
	}
	preCompactions := interrupted.Compactions()

	var blob bytes.Buffer
	if err := interrupted.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}
	if interrupted.Compactions() != preCompactions {
		t.Fatal("Snapshot forced a compaction")
	}
	snapBytes := append([]byte{}, blob.Bytes()...)

	restored, err := RestoreMaintainer(bytes.NewReader(snapBytes))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Updates() != interrupted.Updates() || restored.Compactions() != interrupted.Compactions() {
		t.Fatalf("restored counters %d/%d, want %d/%d",
			restored.Updates(), restored.Compactions(), interrupted.Updates(), interrupted.Compactions())
	}

	// EstimateRange at the snapshot point must agree bit-for-bit.
	for a := 1; a < n; a += 613 {
		b := a + 400
		if b > n {
			b = n
		}
		want, err1 := interrupted.EstimateRange(a, b)
		got, err2 := restored.EstimateRange(a, b)
		if err1 != nil || err2 != nil || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("EstimateRange(%d, %d) = %v, want %v", a, b, got, want)
		}
	}

	// Snapshot of the restored maintainer reproduces the checkpoint bytes.
	blob.Reset()
	if err := restored.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapBytes, blob.Bytes()) {
		t.Fatal("snapshot → restore → snapshot bytes differ")
	}

	// Resume: the restored maintainer and the uninterrupted one see the same
	// remaining stream and must land on bit-identical summaries with the
	// same compaction cadence.
	for i := cut; i < total; i++ {
		if err := uninterrupted.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
		if err := restored.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	if restored.Compactions() != uninterrupted.Compactions() {
		t.Fatalf("compaction cadence diverged: %d vs %d",
			restored.Compactions(), uninterrupted.Compactions())
	}
	hw, err := uninterrupted.Summary()
	if err != nil {
		t.Fatal(err)
	}
	hg, err := restored.Summary()
	if err != nil {
		t.Fatal(err)
	}
	histogramsBitIdentical(t, hg, hw, "resumed summary")
}

func TestShardedSnapshotRestoreResumesBitIdentically(t *testing.T) {
	const n, k, shards, total = 4000, 6, 4, 12000
	points, weights := streamFixture(n, total, 99)

	run := func(interruptAt int) *core.Histogram {
		s, err := NewSharded(n, k, shards, 128, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < total; i++ {
			if i == interruptAt {
				var blob bytes.Buffer
				if err := s.Snapshot(&blob); err != nil {
					t.Fatal(err)
				}
				// "Crash": drop the live engine, restore from bytes.
				s, err = RestoreSharded(bytes.NewReader(blob.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				if s.Shards() != shards {
					t.Fatalf("restored %d shards, want %d", s.Shards(), shards)
				}
			}
			if err := s.Add(points[i], weights[i]); err != nil {
				t.Fatal(err)
			}
		}
		h, err := s.Summary()
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Updates(); got != total {
			t.Fatalf("Updates = %d, want %d", got, total)
		}
		return h
	}

	want := run(-1) // uninterrupted
	for _, at := range []int{0, 1000, total/2 + 31, total - 1} {
		got := run(at)
		histogramsBitIdentical(t, got, want, "sharded resume")
	}
}

func TestShardedSnapshotEstimateRangeAgrees(t *testing.T) {
	const n, k, shards, total = 3000, 5, 3, 5000
	points, weights := streamFixture(n, total, 314)
	s, err := NewSharded(n, k, shards, 64, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		if err := s.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	var blob bytes.Buffer
	if err := s.Snapshot(&blob); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSharded(bytes.NewReader(blob.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a < n; a += 401 {
		b := a + 350
		if b > n {
			b = n
		}
		want, err1 := s.EstimateRange(a, b)
		got, err2 := restored.EstimateRange(a, b)
		if err1 != nil || err2 != nil || math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("EstimateRange(%d, %d) = %v (%v), want %v (%v)", a, b, got, err2, want, err1)
		}
	}
	// Counters must carry over.
	if restored.Updates() != s.Updates() || restored.Compactions() != s.Compactions() {
		t.Fatalf("restored counters %d/%d, want %d/%d",
			restored.Updates(), restored.Compactions(), s.Updates(), s.Compactions())
	}
}

// TestCheckpointLargeDomain pins the fix for value integers (domain size,
// counters) being capped by the length-prefix sanity bound: a maintainer
// over a 300M-point domain must snapshot AND restore.
func TestCheckpointLargeDomain(t *testing.T) {
	const n = 300_000_000
	m, err := NewMaintainer(n, 3, 16, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := m.Add(1+i*7_000_000, 1); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreMaintainer(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("large-domain checkpoint failed to restore: %v", err)
	}
	want, _ := m.EstimateRange(1, n)
	got, err := restored.EstimateRange(1, n)
	if err != nil || math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("EstimateRange(1, n) = %v (%v), want %v", got, err, want)
	}
}

func TestCheckpointRejectsMalformed(t *testing.T) {
	m, err := NewMaintainer(100, 3, 16, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 60; i++ {
		if err := m.Add(1+(i*7)%100, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := m.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut++ {
		if _, err := RestoreMaintainer(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d", cut, len(good))
		}
	}
	for pos := 6; pos < len(good)-1; pos += 2 {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x20
		if _, err := RestoreMaintainer(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d decoded silently", pos)
		}
	}

	// A maintainer checkpoint is not a sharded checkpoint.
	if _, err := RestoreSharded(bytes.NewReader(good)); err == nil {
		t.Fatal("RestoreSharded accepted a maintainer checkpoint")
	}
}
