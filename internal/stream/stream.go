// Package stream provides maintained and mergeable histogram summaries on
// top of the core merging algorithm — the "approximate histogram
// maintenance" setting of Gibbons–Matias–Poosala [GMP97] and
// Gilbert et al. [GGI+02] that the paper's introduction cites as a driving
// application.
//
// Three primitives:
//
//   - Maintainer ingests a stream of point updates (i, w) over [1, n],
//     buffering them and periodically recompacting (previous summary +
//     buffer) back to O(k) pieces with one merging run. Amortized update
//     cost is O(1); the summary is always within the merging guarantee of
//     the *summarized* stream, with bounded drift against the true stream
//     (each compaction flattens inside pieces whose SSE the merging step
//     already certified small). Single-goroutine; Sharded is the
//     multi-core front end.
//
//   - Merge / MergeAll combine the summaries of disjoint data partitions
//     into one: the sum of histograms is a histogram on the common
//     refinement of their partitions (exactly — no approximation), which is
//     then recompacted to O(k) pieces. MergeAll sweeps the m-way refinement
//     in a single pass and recurses through a deterministic aggregation
//     tree for large m. This is the "mergeable summaries" shape used by
//     parallel aggregation trees.
//
//   - Sharded scales intake across cores: updates hash to per-core shards,
//     each an independently compacting Maintainer whose merging runs happen
//     on a background goroutine behind a double-buffered update log, so the
//     ingest path never blocks on a merging run while compaction keeps up.
package stream

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/sparse"
)

// summaryView is the compacted summary in the flat form the maintenance hot
// path works with: the partition, the per-piece values, and the prefix
// masses that make range sums O(log pieces). The backing arrays belong to
// the maintainer's compaction scratch (double-buffered), so a view stays
// readable while the *next* compaction builds its successor — the property
// Sharded's lock-scoped readers rely on.
type summaryView struct {
	part   interval.Partition
	values []float64
	// prefix[i] is the total mass of pieces 0..i-1; len(prefix) = pieces+1.
	prefix []float64
	// err is the ℓ2 error the last merging run certified against its
	// summarized input.
	err float64
}

func (v *summaryView) empty() bool { return len(v.part) == 0 }

// find returns the index of the piece containing x.
func (v *summaryView) find(x int) int {
	return sort.Search(len(v.part), func(i int) bool { return v.part[i].Hi >= x })
}

// rangeSum returns the summary's mass over [a, b] in O(log pieces) with no
// allocation: two piece locations plus a prefix-mass difference.
func (v *summaryView) rangeSum(a, b int) float64 {
	i := v.find(a)
	j := v.find(b)
	if i == j {
		return float64(b-a+1) * v.values[i]
	}
	total := float64(v.part[i].Hi-a+1)*v.values[i] + float64(b-v.part[j].Lo+1)*v.values[j]
	return total + v.prefix[j] - v.prefix[i+1]
}

// ringCap bounds the duration rings below: enough samples for stable tail
// percentiles without unbounded growth on long-lived streams.
const ringCap = 512

// durRing records the most recent ringCap durations of a recurring event
// (compactions, ingest stalls) plus the total event count.
type durRing struct {
	buf [ringCap]int64
	n   int
}

func (r *durRing) add(d time.Duration) {
	r.buf[r.n%ringCap] = int64(d)
	r.n++
}

// count returns the total number of events recorded, which may exceed the
// ringCap samples snapshot retains.
func (r *durRing) count() int { return r.n }

// snapshot appends the recorded durations (up to ringCap, unordered) to dst.
func (r *durRing) snapshot(dst []time.Duration) []time.Duration {
	m := r.n
	if m > ringCap {
		m = ringCap
	}
	for i := 0; i < m; i++ {
		dst = append(dst, time.Duration(r.buf[i]))
	}
	return dst
}

// Maintainer ingests point updates and maintains an O(k)-piece histogram
// summary of the accumulated frequency vector. It is single-goroutine; use
// Sharded for concurrent multi-core intake.
type Maintainer struct {
	n    int
	k    int
	opts core.Options

	// view is the current compacted summary (empty before the first
	// compaction: the buffer alone holds all mass). Its backing arrays live
	// in compactor's double-buffered output plus prefixBufs below.
	view summaryView
	// staged is the successor view built by stageLog and published by
	// installStaged — split so Sharded can run the heavy build off-lock and
	// the cheap install under its shard lock.
	staged   summaryView
	stagedOK bool
	// compactor owns the merging-run scratch; reusing it across compactions
	// is what makes the steady-state compaction path allocation-free.
	compactor core.SummaryScratch
	// prefixBufs double-buffers the prefix masses the same way the
	// compactor double-buffers partitions: stageLog writes the buffer the
	// live view is not reading.
	prefixBufs [2][]float64
	curPrefix  int
	// hist memoizes the materialized Summary() histogram until the next
	// compaction invalidates it.
	hist *core.Histogram

	// Buffered updates since the last compaction: a flat append-only log,
	// deduplicated (same point, summed weights) at compaction time. Compared
	// to the map it replaced, Add is one slice append — no hashing, no
	// re-hash churn at steady state once the backing array has grown to
	// bufferCap — and compaction iterates updates in a deterministic order.
	buffer []sparse.Entry
	// scratch holds the deduplicated buffer between compactions so the
	// dedup pass allocates nothing at steady state.
	scratch []sparse.Entry
	// sorter is the linear-time stable sort kernel behind dedupedBuffer,
	// owning its scatter/histogram scratch across compactions.
	sorter sparse.IndexSorter
	// bufferCap triggers compaction once len(buffer) reaches it. With the
	// append-only log this counts buffered *updates*, not distinct points,
	// so compaction cadence is independent of how concentrated the stream
	// is.
	bufferCap int
	// targetPieces is the merging target ⌊(2+2/δ)k+γ⌋; maxPieces is the lazy
	// recompaction threshold (lazyExpandFactor × target): an inline
	// compaction sweeps buffered deltas into the view with MergeIn and only
	// pays merging rounds once the refined piece count exceeds maxPieces,
	// so concentrated streams amortize the merge pause across many cheap
	// sweep-only cycles. Summary always re-merges down to targetPieces.
	targetPieces int
	maxPieces    int

	updates     int
	compactions int
	compactDur  durRing

	// win is the sealed-epoch ring of a windowed maintainer (see window.go);
	// nil on a plain maintainer, where every query covers the full history.
	win *windowRing
}

// resolveBufferCap applies the shared default: 0 or negative picks a buffer
// proportional to the summary size (8× the merging target, at least 64),
// which keeps the amortized per-update cost constant.
func resolveBufferCap(bufferCap, k int, opts core.Options) int {
	if bufferCap > 0 {
		return bufferCap
	}
	bufferCap = 8 * opts.TargetPieces(k)
	if bufferCap < 64 {
		return 64
	}
	return bufferCap
}

// NewMaintainer builds a maintainer for the domain [1, n] targeting k-piece
// summaries. bufferCap controls the compaction period; 0 picks a default
// proportional to the summary size (8× the merging target), which keeps the
// amortized per-update cost constant.
func NewMaintainer(n, k, bufferCap int, opts core.Options) (*Maintainer, error) {
	m, err := newMaintainer(n, k, bufferCap, opts)
	if err != nil {
		return nil, err
	}
	m.buffer = make([]sparse.Entry, 0, m.bufferCap)
	return m, nil
}

// newMaintainer is NewMaintainer without the update-log allocation — the
// summarizing core shared with Sharded, whose shards bring their own
// double-buffered logs.
func newMaintainer(n, k, bufferCap int, opts core.Options) (*Maintainer, error) {
	if n < 1 {
		return nil, fmt.Errorf("stream: domain size %d < 1", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("stream: k must be ≥ 1, got %d", k)
	}
	target := opts.TargetPieces(k)
	return &Maintainer{
		n: n, k: k, opts: opts,
		bufferCap:    resolveBufferCap(bufferCap, k, opts),
		targetPieces: target,
		maxPieces:    lazyExpandFactor * target,
	}, nil
}

// lazyExpandFactor bounds how far past the merging target a maintained view
// may grow before an inline compaction pays for a full merging run. Lazy
// views keep every estimate exact-or-better (more pieces = a strictly finer
// summary of the same mass), cost O(log pieces) extra per range query, and
// bound staged-scratch memory at maxPieces + 2·bufferCap entries.
const lazyExpandFactor = 4

// Add records an update: the frequency of point i increases by w (w may be
// negative for deletions; the maintained vector may then go negative, which
// the summary represents faithfully).
func (m *Maintainer) Add(i int, w float64) error {
	if i < 1 || i > m.n {
		return fmt.Errorf("stream: point %d out of [1, %d]", i, m.n)
	}
	m.buffer = append(m.buffer, sparse.Entry{Index: i, Value: w})
	m.updates++
	if len(m.buffer) >= m.bufferCap {
		return m.Compact()
	}
	return nil
}

// AddBatch records points[i] += weights[i] for every i; a nil weights slice
// means unit weight for every point. The batch is validated up front (no
// partial ingestion on a bad point) and then appended in runs that exactly
// fill the buffer: the per-entry flush check and the weights-vs-unit branch
// of the old loop are hoisted out, so the inner loop is a bare append per
// entry, with one Compact per bufferCap entries — the same cadence (and
// bit-identical results) as calling Add once per point.
func (m *Maintainer) AddBatch(points []int, weights []float64) error {
	if weights != nil && len(weights) != len(points) {
		return fmt.Errorf("stream: %d weights for %d points", len(weights), len(points))
	}
	for _, p := range points {
		if p < 1 || p > m.n {
			return fmt.Errorf("stream: point %d out of [1, %d]", p, m.n)
		}
	}
	total := len(points)
	for len(points) > 0 {
		room := m.bufferCap - len(m.buffer)
		if room > len(points) {
			room = len(points)
		}
		if weights == nil {
			for _, p := range points[:room] {
				m.buffer = append(m.buffer, sparse.Entry{Index: p, Value: 1})
			}
		} else {
			for i, p := range points[:room] {
				m.buffer = append(m.buffer, sparse.Entry{Index: p, Value: weights[i]})
			}
			weights = weights[room:]
		}
		points = points[room:]
		if len(m.buffer) >= m.bufferCap {
			if err := m.Compact(); err != nil {
				return err
			}
		}
	}
	m.updates += total
	return nil
}

// Updates returns the number of updates ingested.
func (m *Maintainer) Updates() int { return m.updates }

// Compactions returns how many times the summary has been recompacted.
func (m *Maintainer) Compactions() int { return m.compactions }

// CompactionDurations appends the durations of the most recent compactions
// (up to 512) to dst and returns it — the raw material of the ingestion
// benchmark's pause percentiles: for the inline-compacting Maintainer every
// compaction is an ingest pause.
func (m *Maintainer) CompactionDurations(dst []time.Duration) []time.Duration {
	return m.compactDur.snapshot(dst)
}

// Compact folds the buffer into the summary now. It is called automatically
// when the buffer fills; callers only need it before reading an up-to-date
// Summary.
func (m *Maintainer) Compact() error {
	if len(m.buffer) == 0 {
		return nil
	}
	start := time.Now()
	if err := m.stageLog(m.buffer); err != nil {
		return err
	}
	m.installStaged()
	m.compactDur.add(time.Since(start))
	m.buffer = m.buffer[:0]
	return nil
}

// stageLog runs the heavy half of a compaction at the lazy threshold: most
// cycles are one radix sort + dedup + linear merge-in sweep, with merging
// rounds only when the refined view outgrows maxPieces.
func (m *Maintainer) stageLog(log []sparse.Entry) error {
	return m.stage(log, m.maxPieces)
}

// stage runs the heavy half of a compaction: radix-sort and dedup the update
// log, sweep it into the current summary view with core's incremental
// MergeIn (which runs merging rounds only if the refined piece count exceeds
// maxPieces — 0 forces a full merge down to the target), and compute the
// successor view's prefix masses — all into scratch the live view does not
// reference. It does not publish: installStaged flips the maintainer to the
// staged view. The split lets Sharded run the staging on a background
// goroutine while readers keep serving the old view, with only the cheap
// install inside the shard lock. The log is read, never retained or
// modified.
func (m *Maintainer) stage(log []sparse.Entry, maxPieces int) error {
	deltas := m.dedupedBuffer(log)
	res, err := m.compactor.MergeIn(m.n, m.view.part, m.view.values, deltas, m.k, maxPieces, m.opts)
	if err != nil {
		return err
	}
	pre := m.prefixBufs[1-m.curPrefix]
	if cap(pre) < len(res.Partition)+1 {
		pre = make([]float64, 0, len(res.Partition)+1)
	}
	pre = pre[:0]
	pre = append(pre, 0)
	for i, iv := range res.Partition {
		pre = append(pre, pre[i]+float64(iv.Len())*res.Values[i])
	}
	m.prefixBufs[1-m.curPrefix] = pre
	m.staged = summaryView{part: res.Partition, values: res.Values, prefix: pre, err: res.Error}
	m.stagedOK = true
	return nil
}

// installStaged publishes the view stageLog built. O(1): a few word writes,
// cheap enough to run under a shard lock.
func (m *Maintainer) installStaged() {
	if !m.stagedOK {
		return
	}
	m.curPrefix = 1 - m.curPrefix
	m.view = m.staged
	m.staged = summaryView{}
	m.stagedOK = false
	m.hist = nil
	m.compactions++
}

// compactLog folds an external update log into the summary synchronously:
// stage + install. Sharded's drain path uses it for the final sub-capacity
// buffer.
func (m *Maintainer) compactLog(log []sparse.Entry) error {
	if len(log) == 0 {
		return nil
	}
	start := time.Now()
	if err := m.stageLog(log); err != nil {
		return err
	}
	m.installStaged()
	m.compactDur.add(time.Since(start))
	return nil
}

// dedupedBuffer collapses the update log into entries sorted by point with
// duplicate points summed (in log order, so the float result is
// deterministic). Points whose deltas cancel to zero are kept — like the map
// buffer before it, a touched point stays a refinement singleton. The result
// lives in m.scratch and is valid until the next call. The sort is the
// stable linear-time kernel of sparse.IndexSorter (LSD radix, or counting
// sort when the domain is small relative to the log) — the comparison sort
// it replaced survives as the test oracle, and stability keeps the dedup
// sums bit-identical to it (TestDedupedBufferMatchesComparisonOracle).
func (m *Maintainer) dedupedBuffer(log []sparse.Entry) []sparse.Entry {
	dst := m.scratch[:0]
	dst = append(dst, log...)
	m.sorter.Sort(dst, m.n)
	out := dst[:0]
	for _, e := range dst {
		if len(out) > 0 && out[len(out)-1].Index == e.Index {
			out[len(out)-1].Value += e.Value
			continue
		}
		out = append(out, e)
	}
	m.scratch = dst
	return out
}

// EstimateRange returns the maintained vector's sum over [a, b] — summary
// mass plus pending buffered deltas — without forcing a compaction, so the
// serving path never pays a merging run. Cost is O(log pieces) for the
// summary (two binary searches plus a prefix-mass difference) plus a linear
// scan of the pending update log: O(p) for p buffered updates, which is
// O(bufferCap) in the worst case (a compaction is imminent) and short-
// circuits to the summary lookup alone when the buffer is empty — len(buffer)
// is the running pending-update count, so the empty check is free.
func (m *Maintainer) EstimateRange(a, b int) (float64, error) {
	if m.win != nil {
		// A windowed maintainer's plain query covers every retained epoch,
		// undecayed.
		return m.EstimateRangeOver(a, b, 0, 0)
	}
	if a < 1 || b > m.n || a > b {
		return 0, fmt.Errorf("stream: range [%d, %d] invalid for domain [1, %d]", a, b, m.n)
	}
	var total float64
	if !m.view.empty() {
		total = m.view.rangeSum(a, b)
	}
	if len(m.buffer) > 0 {
		for _, e := range m.buffer {
			if a <= e.Index && e.Index <= b {
				total += e.Value
			}
		}
	}
	return total, nil
}

// materialize returns the compacted summary as an immutable Histogram,
// memoized until the next compaction. Pending buffered updates are NOT
// included; callers compact first (Summary does).
func (m *Maintainer) materialize() *core.Histogram {
	if m.hist == nil {
		if m.view.empty() {
			m.hist = core.NewHistogram(m.n,
				interval.Partition{interval.New(1, m.n)}, []float64{0})
		} else {
			// NewHistogram copies, so the returned histogram survives any
			// number of later compactions recycling the view's arrays.
			m.hist = core.NewHistogram(m.n, m.view.part, m.view.values)
		}
	}
	return m.hist
}

// Summary returns the current O(k)-piece summary, compacting pending
// buffered updates first and re-merging a lazily expanded view down to the
// merging target, so the result always carries the full √(1+δ)·opt
// guarantee at O(k) pieces. The returned histogram is immutable and remains
// valid (and correct for the stream seen so far) after further updates.
func (m *Maintainer) Summary() (*core.Histogram, error) {
	if m.win != nil {
		// A windowed maintainer's plain summary covers every retained epoch,
		// undecayed.
		return m.SummaryOver(0, 0)
	}
	if err := m.compactFull(); err != nil {
		return nil, err
	}
	return m.materialize(), nil
}

// compactFull folds any pending buffer AND forces the merging rounds that
// lazy inline compactions may have deferred, leaving the view at or below
// the target piece budget. No-op when the buffer is empty and the view is
// already merged.
func (m *Maintainer) compactFull() error {
	if len(m.buffer) == 0 && len(m.view.part) <= m.targetPieces {
		return nil
	}
	start := time.Now()
	if err := m.stage(m.buffer, 0); err != nil {
		return err
	}
	m.installStaged()
	m.compactDur.add(time.Since(start))
	m.buffer = m.buffer[:0]
	return nil
}
