// Package stream provides maintained and mergeable histogram summaries on
// top of the core merging algorithm — the "approximate histogram
// maintenance" setting of Gibbons–Matias–Poosala [GMP97] and
// Gilbert et al. [GGI+02] that the paper's introduction cites as a driving
// application.
//
// Two primitives:
//
//   - Maintainer ingests a stream of point updates (i, w) over [1, n],
//     buffering them and periodically recompacting (previous summary +
//     buffer) back to O(k) pieces with one merging run. Amortized update
//     cost is O(1); the summary is always within the merging guarantee of
//     the *summarized* stream, with bounded drift against the true stream
//     (each compaction flattens inside pieces whose SSE the merging step
//     already certified small).
//
//   - Merge combines the summaries of two disjoint data partitions into one:
//     the sum of two histograms is a histogram on the common refinement of
//     their partitions (exactly — no approximation), which is then
//     recompacted to O(k) pieces. This is the "mergeable summaries" shape
//     used by parallel aggregation trees.
package stream

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/sparse"
)

// Maintainer ingests point updates and maintains an O(k)-piece histogram
// summary of the accumulated frequency vector.
type Maintainer struct {
	n    int
	k    int
	opts core.Options

	// Current compacted summary (nil before the first compaction: the
	// buffer alone holds all mass).
	summary *core.Histogram
	// Buffered updates since the last compaction: a flat append-only log,
	// deduplicated (same point, summed weights) at compaction time. Compared
	// to the map it replaced, Add is one slice append — no hashing, no
	// re-hash churn at steady state once the backing array has grown to
	// bufferCap — and compaction iterates updates in a deterministic order.
	buffer []sparse.Entry
	// scratch holds the deduplicated buffer between compactions so the
	// dedup pass allocates nothing at steady state.
	scratch []sparse.Entry
	// bufferCap triggers compaction once len(buffer) reaches it. With the
	// append-only log this counts buffered *updates*, not distinct points,
	// so compaction cadence is independent of how concentrated the stream
	// is.
	bufferCap int

	updates     int
	compactions int
}

// NewMaintainer builds a maintainer for the domain [1, n] targeting k-piece
// summaries. bufferCap controls the compaction period; 0 picks a default
// proportional to the summary size (8× the merging target), which keeps the
// amortized per-update cost constant.
func NewMaintainer(n, k, bufferCap int, opts core.Options) (*Maintainer, error) {
	if n < 1 {
		return nil, fmt.Errorf("stream: domain size %d < 1", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("stream: k must be ≥ 1, got %d", k)
	}
	if bufferCap <= 0 {
		bufferCap = 8 * opts.TargetPieces(k)
		if bufferCap < 64 {
			bufferCap = 64
		}
	}
	return &Maintainer{
		n: n, k: k, opts: opts,
		buffer:    make([]sparse.Entry, 0, bufferCap),
		bufferCap: bufferCap,
	}, nil
}

// Add records an update: the frequency of point i increases by w (w may be
// negative for deletions; the maintained vector may then go negative, which
// the summary represents faithfully).
func (m *Maintainer) Add(i int, w float64) error {
	if i < 1 || i > m.n {
		return fmt.Errorf("stream: point %d out of [1, %d]", i, m.n)
	}
	m.buffer = append(m.buffer, sparse.Entry{Index: i, Value: w})
	m.updates++
	if len(m.buffer) >= m.bufferCap {
		return m.Compact()
	}
	return nil
}

// Updates returns the number of updates ingested.
func (m *Maintainer) Updates() int { return m.updates }

// Compactions returns how many times the summary has been recompacted.
func (m *Maintainer) Compactions() int { return m.compactions }

// Compact folds the buffer into the summary now. It is called automatically
// when the buffer fills; callers only need it before reading an up-to-date
// Summary.
func (m *Maintainer) Compact() error {
	if len(m.buffer) == 0 {
		return nil
	}
	part, stats := m.combined()
	res, err := core.ConstructHistogramFromSummary(m.n, part, stats, m.k, m.opts)
	if err != nil {
		return err
	}
	m.summary = res.Histogram
	m.buffer = m.buffer[:0]
	m.compactions++
	return nil
}

// dedupedBuffer collapses the update log into entries sorted by point with
// duplicate points summed (in log order, so the float result is
// deterministic). Points whose deltas cancel to zero are kept — like the map
// buffer before it, a touched point stays a refinement singleton. The result
// lives in m.scratch and is valid until the next call.
func (m *Maintainer) dedupedBuffer() []sparse.Entry {
	dst := m.scratch[:0]
	dst = append(dst, m.buffer...)
	sort.SliceStable(dst, func(i, j int) bool { return dst[i].Index < dst[j].Index })
	out := dst[:0]
	for _, e := range dst {
		if len(out) > 0 && out[len(out)-1].Index == e.Index {
			out[len(out)-1].Value += e.Value
			continue
		}
		out = append(out, e)
	}
	m.scratch = dst
	return out
}

// combined builds the refinement partition of (summary pieces ∪ buffered
// singletons) with the statistics of "summary as piecewise-constant truth
// plus buffered deltas".
func (m *Maintainer) combined() (interval.Partition, []sparse.Stat) {
	points := m.dedupedBuffer()

	var pieces []core.Piece
	if m.summary != nil {
		pieces = m.summary.Pieces()
	} else {
		pieces = []core.Piece{{Interval: interval.New(1, m.n), Value: 0}}
	}

	var part interval.Partition
	var stats []sparse.Stat
	pi := 0
	emit := func(lo, hi int, v float64, delta float64, hasDelta bool) {
		if lo > hi {
			return
		}
		part = append(part, interval.New(lo, hi))
		length := hi - lo + 1
		st := sparse.Stat{Len: length, Sum: v * float64(length), SumSq: v * v * float64(length)}
		if hasDelta {
			// Singleton with value v+delta.
			st.Sum = v + delta
			st.SumSq = (v + delta) * (v + delta)
		}
		stats = append(stats, st)
	}
	for _, pc := range pieces {
		lo := pc.Lo
		for pi < len(points) && points[pi].Index <= pc.Hi {
			p := points[pi].Index
			emit(lo, p-1, pc.Value, 0, false)
			emit(p, p, pc.Value, points[pi].Value, true)
			lo = p + 1
			pi++
		}
		emit(lo, pc.Hi, pc.Value, 0, false)
	}
	return part, stats
}

// EstimateRange returns the maintained vector's sum over [a, b] — summary
// mass plus pending buffered deltas — without forcing a compaction, so the
// serving path never pays a merging run. Cost is O(log pieces) for the
// summary (via the histogram query index) plus O(len(buffer)) for the
// pending deltas; the buffer is bounded by bufferCap, so the added term is
// a constant chosen at construction time.
func (m *Maintainer) EstimateRange(a, b int) (float64, error) {
	if a < 1 || b > m.n || a > b {
		return 0, fmt.Errorf("stream: range [%d, %d] invalid for domain [1, %d]", a, b, m.n)
	}
	var total float64
	if m.summary != nil {
		total = m.summary.RangeSum(a, b)
	}
	for _, e := range m.buffer {
		if a <= e.Index && e.Index <= b {
			total += e.Value
		}
	}
	return total, nil
}

// Summary returns the current O(k)-piece summary, compacting pending
// buffered updates first.
func (m *Maintainer) Summary() (*core.Histogram, error) {
	if err := m.Compact(); err != nil {
		return nil, err
	}
	if m.summary == nil {
		// No updates yet: the zero histogram.
		return core.NewHistogram(m.n,
			interval.Partition{interval.New(1, m.n)}, []float64{0}), nil
	}
	return m.summary, nil
}

// Merge combines two histogram summaries of *disjoint* data sets over the
// same domain into one O(k)-piece summary. The pointwise sum h1 + h2 is
// formed exactly on the common refinement of the two partitions and then
// recompacted with one merging run.
func Merge(h1, h2 *core.Histogram, k int, opts core.Options) (*core.Histogram, error) {
	if h1.N() != h2.N() {
		return nil, fmt.Errorf("stream: merging summaries over [1,%d] and [1,%d]", h1.N(), h2.N())
	}
	n := h1.N()
	p1, p2 := h1.Pieces(), h2.Pieces()
	var part interval.Partition
	var stats []sparse.Stat
	i, j := 0, 0
	lo := 1
	for lo <= n {
		hi := p1[i].Hi
		if p2[j].Hi < hi {
			hi = p2[j].Hi
		}
		v := p1[i].Value + p2[j].Value
		length := hi - lo + 1
		part = append(part, interval.New(lo, hi))
		stats = append(stats, sparse.Stat{
			Len:   length,
			Sum:   v * float64(length),
			SumSq: v * v * float64(length),
		})
		if p1[i].Hi == hi {
			i++
		}
		if p2[j].Hi == hi {
			j++
		}
		lo = hi + 1
	}
	res, err := core.ConstructHistogramFromSummary(n, part, stats, k, opts)
	if err != nil {
		return nil, err
	}
	return res.Histogram, nil
}
