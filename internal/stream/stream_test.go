package stream

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestMaintainerValidation(t *testing.T) {
	if _, err := NewMaintainer(0, 1, 0, core.DefaultOptions()); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewMaintainer(10, 0, 0, core.DefaultOptions()); err == nil {
		t.Fatal("k=0 should error")
	}
	m, err := NewMaintainer(10, 2, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 1); err == nil {
		t.Fatal("point 0 should error")
	}
	if err := m.Add(11, 1); err == nil {
		t.Fatal("point 11 should error")
	}
}

func TestMaintainerEmptySummary(t *testing.T) {
	m, err := NewMaintainer(100, 3, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if h.Mass() != 0 || h.NumPieces() != 1 {
		t.Fatal("empty maintainer should summarize to the zero histogram")
	}
}

func TestMaintainerMassExact(t *testing.T) {
	// Total mass is preserved exactly through any number of compactions:
	// flattening preserves interval sums.
	r := rng.New(277)
	m, err := NewMaintainer(1000, 5, 32, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < 5000; i++ {
		p := 1 + r.Intn(1000)
		w := r.Float64()
		total += w
		if err := m.Add(p, w); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(h.Mass(), total, 1e-9) {
		t.Fatalf("summary mass %v, stream total %v", h.Mass(), total)
	}
	if m.Compactions() == 0 {
		t.Fatal("expected at least one compaction")
	}
	if m.Updates() != 5000 {
		t.Fatalf("updates = %d", m.Updates())
	}
}

func TestMaintainerRecoversStepStream(t *testing.T) {
	// Stream a k-step frequency vector point by point (in order); the
	// maintained summary should recover it near-exactly despite repeated
	// compaction (opt_k of every intermediate prefix is 0 or one partial
	// step).
	levels := []float64{4, 9, 2, 7}
	n := 400
	m, err := NewMaintainer(n, len(levels)+1, 64, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, n)
	for i := 1; i <= n; i++ {
		v := levels[(i-1)*len(levels)/n]
		truth[i-1] = v
		if err := m.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got := h.L2DistToDense(truth); got > 1e-6 {
		t.Fatalf("maintained summary error %v on a step stream", got)
	}
}

func TestMaintainerRandomStreamCloseToDirectFit(t *testing.T) {
	// On a random-order stream, the maintained summary must stay within a
	// small factor of fitting the final vector directly — the drift from
	// intermediate compactions is bounded.
	r := rng.New(281)
	n := 2000
	k := 10
	truth := make([]float64, n)
	m, err := NewMaintainer(n, k, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Underlying signal: 10 steps; stream adds unit mass at signal-weighted
	// random points.
	levels := []float64{1, 6, 3, 9, 2, 8, 4, 10, 5, 7}
	for u := 0; u < 60000; u++ {
		// Rejection-sample a point proportional to the step signal.
		for {
			p := 1 + r.Intn(n)
			if r.Float64()*10 < levels[(p-1)*10/n] {
				truth[p-1]++
				if err := m.Add(p, 1); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	streamErr := h.L2DistToDense(truth)
	direct, err := core.ConstructHistogram(sparse.FromDense(truth), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if streamErr > 3*direct.Error+1e-9 {
		t.Fatalf("maintained error %v vs direct fit %v — drift too large", streamErr, direct.Error)
	}
}

func TestMaintainerDeletions(t *testing.T) {
	m, err := NewMaintainer(50, 2, 16, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := m.Add(i, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 50; i++ {
		if err := m.Add(i, -2); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mass()) > 1e-9 {
		t.Fatalf("mass after full deletion %v", h.Mass())
	}
}

func TestMergeDisjointSummaries(t *testing.T) {
	// Summaries of the left and right halves merge into a summary of the
	// whole that matches a direct fit closely.
	r := rng.New(283)
	n := 1200
	k := 6
	whole := make([]float64, n)
	left := make([]float64, n)
	right := make([]float64, n)
	levels := []float64{3, 8, 1, 12, 5, 9}
	for i := range whole {
		v := levels[i*len(levels)/n] + 0.2*r.NormFloat64()
		whole[i] = v
		if i < n/2 {
			left[i] = v
		} else {
			right[i] = v
		}
	}
	fitL, err := core.ConstructHistogram(sparse.FromDense(left), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fitR, err := core.ConstructHistogram(sparse.FromDense(right), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(fitL.Histogram, fitR.Histogram, k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.ConstructHistogram(sparse.FromDense(whole), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mergedErr := merged.L2DistToDense(whole)
	if mergedErr > 3*(direct.Error+1) {
		t.Fatalf("merged error %v vs direct %v", mergedErr, direct.Error)
	}
	// Mass adds exactly.
	if !numeric.AlmostEqual(merged.Mass(), fitL.Histogram.Mass()+fitR.Histogram.Mass(), 1e-6) {
		t.Fatalf("merged mass %v", merged.Mass())
	}
}

func TestMergeDomainMismatch(t *testing.T) {
	a, err := core.ConstructHistogram(sparse.FromDense([]float64{1, 2}), 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.ConstructHistogram(sparse.FromDense([]float64{1, 2, 3}), 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a.Histogram, b.Histogram, 1, core.DefaultOptions()); err == nil {
		t.Fatal("domain mismatch should error")
	}
}

func TestMergeIdentity(t *testing.T) {
	// Merging a summary with the zero summary reproduces it (up to
	// recompaction of an already-small partition: no merging happens since
	// pieces ≤ target).
	fit, err := core.ConstructHistogram(sparse.FromDense([]float64{5, 5, 5, 1, 1, 1}), 2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	zero := core.NewHistogram(6,
		fit.Histogram.Partition(), make([]float64, fit.Histogram.NumPieces()))
	merged, err := Merge(fit.Histogram, zero, 2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if !numeric.AlmostEqual(merged.At(i), fit.Histogram.At(i), 1e-12) {
			t.Fatalf("identity merge changed value at %d", i)
		}
	}
}
