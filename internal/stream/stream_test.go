package stream

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sparse"
)

func TestMaintainerValidation(t *testing.T) {
	if _, err := NewMaintainer(0, 1, 0, core.DefaultOptions()); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := NewMaintainer(10, 0, 0, core.DefaultOptions()); err == nil {
		t.Fatal("k=0 should error")
	}
	m, err := NewMaintainer(10, 2, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0, 1); err == nil {
		t.Fatal("point 0 should error")
	}
	if err := m.Add(11, 1); err == nil {
		t.Fatal("point 11 should error")
	}
}

func TestMaintainerEmptySummary(t *testing.T) {
	m, err := NewMaintainer(100, 3, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if h.Mass() != 0 || h.NumPieces() != 1 {
		t.Fatal("empty maintainer should summarize to the zero histogram")
	}
}

func TestMaintainerMassExact(t *testing.T) {
	// Total mass is preserved exactly through any number of compactions:
	// flattening preserves interval sums.
	r := rng.New(277)
	m, err := NewMaintainer(1000, 5, 32, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 0; i < 5000; i++ {
		p := 1 + r.Intn(1000)
		w := r.Float64()
		total += w
		if err := m.Add(p, w); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(h.Mass(), total, 1e-9) {
		t.Fatalf("summary mass %v, stream total %v", h.Mass(), total)
	}
	if m.Compactions() == 0 {
		t.Fatal("expected at least one compaction")
	}
	if m.Updates() != 5000 {
		t.Fatalf("updates = %d", m.Updates())
	}
}

func TestMaintainerRecoversStepStream(t *testing.T) {
	// Stream a k-step frequency vector point by point (in order); the
	// maintained summary should recover it near-exactly despite repeated
	// compaction (opt_k of every intermediate prefix is 0 or one partial
	// step).
	levels := []float64{4, 9, 2, 7}
	n := 400
	m, err := NewMaintainer(n, len(levels)+1, 64, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, n)
	for i := 1; i <= n; i++ {
		v := levels[(i-1)*len(levels)/n]
		truth[i-1] = v
		if err := m.Add(i, v); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if got := h.L2DistToDense(truth); got > 1e-6 {
		t.Fatalf("maintained summary error %v on a step stream", got)
	}
}

func TestMaintainerRandomStreamCloseToDirectFit(t *testing.T) {
	// On a random-order stream, the maintained summary must stay within a
	// small factor of fitting the final vector directly — the drift from
	// intermediate compactions is bounded.
	r := rng.New(281)
	n := 2000
	k := 10
	truth := make([]float64, n)
	m, err := NewMaintainer(n, k, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Underlying signal: 10 steps; stream adds unit mass at signal-weighted
	// random points.
	levels := []float64{1, 6, 3, 9, 2, 8, 4, 10, 5, 7}
	for u := 0; u < 60000; u++ {
		// Rejection-sample a point proportional to the step signal.
		for {
			p := 1 + r.Intn(n)
			if r.Float64()*10 < levels[(p-1)*10/n] {
				truth[p-1]++
				if err := m.Add(p, 1); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	streamErr := h.L2DistToDense(truth)
	direct, err := core.ConstructHistogram(sparse.FromDense(truth), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if streamErr > 3*direct.Error+1e-9 {
		t.Fatalf("maintained error %v vs direct fit %v — drift too large", streamErr, direct.Error)
	}
}

func TestMaintainerDeletions(t *testing.T) {
	m, err := NewMaintainer(50, 2, 16, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if err := m.Add(i, 2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 50; i++ {
		if err := m.Add(i, -2); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Mass()) > 1e-9 {
		t.Fatalf("mass after full deletion %v", h.Mass())
	}
}

func TestMergeDisjointSummaries(t *testing.T) {
	// Summaries of the left and right halves merge into a summary of the
	// whole that matches a direct fit closely.
	r := rng.New(283)
	n := 1200
	k := 6
	whole := make([]float64, n)
	left := make([]float64, n)
	right := make([]float64, n)
	levels := []float64{3, 8, 1, 12, 5, 9}
	for i := range whole {
		v := levels[i*len(levels)/n] + 0.2*r.NormFloat64()
		whole[i] = v
		if i < n/2 {
			left[i] = v
		} else {
			right[i] = v
		}
	}
	fitL, err := core.ConstructHistogram(sparse.FromDense(left), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fitR, err := core.ConstructHistogram(sparse.FromDense(right), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(fitL.Histogram, fitR.Histogram, k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.ConstructHistogram(sparse.FromDense(whole), k, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mergedErr := merged.L2DistToDense(whole)
	if mergedErr > 3*(direct.Error+1) {
		t.Fatalf("merged error %v vs direct %v", mergedErr, direct.Error)
	}
	// Mass adds exactly.
	if !numeric.AlmostEqual(merged.Mass(), fitL.Histogram.Mass()+fitR.Histogram.Mass(), 1e-6) {
		t.Fatalf("merged mass %v", merged.Mass())
	}
}

func TestMergeDomainMismatch(t *testing.T) {
	a, err := core.ConstructHistogram(sparse.FromDense([]float64{1, 2}), 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.ConstructHistogram(sparse.FromDense([]float64{1, 2, 3}), 1, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a.Histogram, b.Histogram, 1, core.DefaultOptions()); err == nil {
		t.Fatal("domain mismatch should error")
	}
}

func TestMergeIdentity(t *testing.T) {
	// Merging a summary with the zero summary reproduces it (up to
	// recompaction of an already-small partition: no merging happens since
	// pieces ≤ target).
	fit, err := core.ConstructHistogram(sparse.FromDense([]float64{5, 5, 5, 1, 1, 1}), 2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	zero := core.NewHistogram(6,
		fit.Histogram.Partition(), make([]float64, fit.Histogram.NumPieces()))
	merged, err := Merge(fit.Histogram, zero, 2, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if !numeric.AlmostEqual(merged.At(i), fit.Histogram.At(i), 1e-12) {
			t.Fatalf("identity merge changed value at %d", i)
		}
	}
}

func TestMaintainerEstimateRangeExactOnStepStream(t *testing.T) {
	// Stream a k-step vector the maintainer can represent with zero error;
	// EstimateRange must then return exact range sums — whether the queried
	// mass sits in the compacted summary, the pending buffer, or both.
	levels := []float64{4, 9, 2, 7}
	n := 400
	m, err := NewMaintainer(n, len(levels)+1, 64, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, n)
	prefix := make([]float64, n+1)
	for i := 1; i <= n; i++ {
		v := levels[(i-1)*len(levels)/n]
		truth[i-1] = v
		if err := m.Add(i, v); err != nil {
			t.Fatal(err)
		}
		prefix[i] = prefix[i-1] + v
	}
	compactionsBefore := m.Compactions()
	for _, q := range [][2]int{{1, n}, {1, 1}, {n, n}, {50, 150}, {99, 301}, {100, 100}} {
		got, err := m.EstimateRange(q[0], q[1])
		if err != nil {
			t.Fatal(err)
		}
		want := prefix[q[1]] - prefix[q[0]-1]
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("EstimateRange(%d, %d) = %v, want %v", q[0], q[1], got, want)
		}
	}
	if m.Compactions() != compactionsBefore {
		t.Fatal("EstimateRange must not force a compaction")
	}
}

func TestMaintainerEstimateRangeUsesPendingBuffer(t *testing.T) {
	m, err := NewMaintainer(100, 2, 1024, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// All updates pending in the buffer: no compaction has happened.
	for _, p := range []int{10, 10, 20, 90} {
		if err := m.Add(p, 2.5); err != nil {
			t.Fatal(err)
		}
	}
	if m.Compactions() != 0 {
		t.Fatal("updates should still be buffered")
	}
	got, err := m.EstimateRange(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7.5 {
		t.Fatalf("buffered EstimateRange = %v, want 7.5 (two stacked updates at 10, one at 20)", got)
	}
	if _, err := m.EstimateRange(0, 5); err == nil {
		t.Fatal("invalid range should error")
	}
	if _, err := m.EstimateRange(7, 3); err == nil {
		t.Fatal("reversed range should error")
	}
}

func TestMaintainerBufferDedupMatchesPreSummedStream(t *testing.T) {
	// Duplicated points in the update log must compact to the identical
	// summary a pre-summed stream produces: dedup is exact, not lossy.
	n := 300
	build := func(updates [][2]float64) *core.Histogram {
		m, err := NewMaintainer(n, 4, 1<<20, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range updates {
			if err := m.Add(int(u[0]), u[1]); err != nil {
				t.Fatal(err)
			}
		}
		h, err := m.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	r := rng.New(353)
	var dup [][2]float64
	sums := map[int]float64{}
	for i := 0; i < 4000; i++ {
		p := 1 + r.Intn(40) // heavy duplication: 40 hot points
		w := r.Float64()
		dup = append(dup, [2]float64{float64(p), w})
		sums[p] += w
	}
	var pre [][2]float64
	for p := 1; p <= n; p++ {
		if w, ok := sums[p]; ok {
			pre = append(pre, [2]float64{float64(p), w})
		}
	}
	hd, hp := build(dup), build(pre)
	if hd.NumPieces() != hp.NumPieces() {
		t.Fatalf("dedup summary has %d pieces, pre-summed %d", hd.NumPieces(), hp.NumPieces())
	}
	for i := 1; i <= n; i++ {
		a, b := hd.At(i), hp.At(i)
		if math.Abs(a-b) > 1e-12*(1+math.Abs(b)) {
			t.Fatalf("At(%d): dedup %v vs pre-summed %v", i, a, b)
		}
	}
}

func TestMaintainerDeterministicAcrossRuns(t *testing.T) {
	// The flat buffer iterates in a deterministic order (unlike the map it
	// replaced), so two identical streams must produce bit-identical
	// summaries.
	run := func() *core.Histogram {
		r := rng.New(359)
		m, err := NewMaintainer(500, 6, 128, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3000; i++ {
			if err := m.Add(1+r.Intn(500), r.NormFloat64()); err != nil {
				t.Fatal(err)
			}
		}
		h, err := m.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h1, h2 := run(), run()
	if h1.NumPieces() != h2.NumPieces() {
		t.Fatalf("piece counts differ: %d vs %d", h1.NumPieces(), h2.NumPieces())
	}
	p1, p2 := h1.Pieces(), h2.Pieces()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("piece %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

func TestMaintainerAddBatchMatchesAdd(t *testing.T) {
	// Batch and single-update ingestion share the buffer and compaction
	// cadence exactly, so for the same update sequence the summaries are
	// bit-identical.
	build := func(batch bool) *core.Histogram {
		r := rng.New(397)
		m, err := NewMaintainer(700, 5, 96, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		points := make([]int, 5000)
		weights := make([]float64, 5000)
		for i := range points {
			points[i], weights[i] = 1+r.Intn(700), r.NormFloat64()
		}
		if batch {
			for lo := 0; lo < len(points); lo += 777 { // batches straddle compactions
				hi := lo + 777
				if hi > len(points) {
					hi = len(points)
				}
				if err := m.AddBatch(points[lo:hi], weights[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for i := range points {
				if err := m.Add(points[i], weights[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		h, err := m.Summary()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	hb, ha := build(true), build(false)
	if hb.NumPieces() != ha.NumPieces() {
		t.Fatalf("batch %d pieces vs single %d", hb.NumPieces(), ha.NumPieces())
	}
	pb, pa := hb.Pieces(), ha.Pieces()
	for i := range pb {
		if pb[i] != pa[i] {
			t.Fatalf("piece %d differs: batch %+v vs single %+v", i, pb[i], pa[i])
		}
	}
}

func TestMaintainerAddBatchUnitWeightsAndValidation(t *testing.T) {
	m, err := NewMaintainer(100, 2, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddBatch([]int{3, 3, 7}, nil); err != nil {
		t.Fatal(err)
	}
	got, err := m.EstimateRange(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("unit-weight batch mass = %v, want 3", got)
	}
	if err := m.AddBatch([]int{5, 101}, nil); err == nil {
		t.Fatal("out-of-range point should error")
	}
	if got, _ := m.EstimateRange(1, 100); got != 3 {
		t.Fatalf("failed batch must not partially ingest: mass %v", got)
	}
	if err := m.AddBatch([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("weights length mismatch should error")
	}
}

func TestMaintainerCompactionSteadyStateAllocs(t *testing.T) {
	// The whole compaction cycle — fill the buffer, dedup, build the
	// refinement, run the merging loop, publish the new summary — allocates
	// nothing once the maintainer's scratch (dedup buffer, refinement
	// partition/stats, SummaryScratch, prefix double buffer) has grown to
	// the working-set size.
	opts := core.DefaultOptions()
	opts.Workers = 1
	m, err := NewMaintainer(1000, 4, 256, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(389)
	points := make([]int, 256)
	for i := range points {
		points[i] = 1 + r.Intn(1000)
	}
	cycle := func() {
		for _, p := range points {
			// The last Add of each cycle triggers the inline compaction.
			if err := m.Add(p, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 8; i++ { // warm every scratch buffer through real cycles
		cycle()
	}
	if m.Compactions() < 8 {
		t.Fatalf("warmup ran %d compactions, want ≥ 8", m.Compactions())
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("steady-state ingest+compaction cycle allocates %v/op, want 0", allocs)
	}
}

func TestMaintainerAddSteadyStateAllocs(t *testing.T) {
	// Once the buffer's backing array has grown to bufferCap, Add between
	// compactions is a bare append: zero allocations.
	m, err := NewMaintainer(1000, 4, 512, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(367)
	for i := 0; i < 2048; i++ { // grow buffer and scratch through compactions
		if err := m.Add(1+r.Intn(1000), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	point := 1 + r.Intn(1000)
	if allocs := testing.AllocsPerRun(100, func() {
		// 100 < bufferCap runs, so no compaction triggers inside the window.
		if err := m.Add(point, 1); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("buffered Add allocates %v/op at steady state, want 0", allocs)
	}
}
