package stream

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/sparse"
)

// Windowed and time-decayed streams.
//
// A windowed engine partitions its stream into epochs: the caller (or a
// timer above the engine) calls Advance at each epoch boundary, which seals
// the current epoch's summary into a ring of per-epoch histograms and
// resets the live maintainer to empty. The engine retains the last
// WindowEpochs epochs — the current (live) epoch plus up to WindowEpochs−1
// sealed ones — and answers queries over any suffix of them:
//
//   - EstimateRangeOver(a, b, window, halflife) sums the newest `window`
//     epochs (0 = every retained epoch), scaling each sealed epoch's mass by
//     the exponential-decay factor 2^(−age/halflife) for its age in epochs
//     (0 = off). The live epoch has age 0, so its factor is exactly 1 and
//     undecayed answers are bit-identical to the unscaled sum.
//   - SummaryOver merges the same scaled per-epoch summaries into one
//     O(k)-piece histogram with the k-way MergeAll sweep.
//
// Why this composes cleanly with the paper's machinery: the merging
// guarantee is scale-invariant — scaling every input mass by c scales both
// the summary's error and the optimum by c, so a c-scaled summary of an
// epoch IS a √(1+δ)·opt summary of the c-scaled epoch. Applying the decay
// factor to each sealed epoch's summary as it enters the window merge is
// therefore exactly "scale summary masses by the elapsed-time factor at
// compaction": the window merge is the compaction, and the guarantee
// survives untouched.
//
// Determinism: an epoch's sealed summary is bit-identical to what a fresh
// Maintainer fed exactly that epoch's updates would produce — Advance
// resets the view and buffer to the fresh state, so compaction groupings
// inside an epoch never depend on earlier epochs. The window property tests
// pin windowed answers against exactly that brute-force re-fit oracle.

// windowRing is the epoch ring of a windowed maintainer: the sealed
// per-epoch summaries (immutable histograms, oldest first) plus the epoch
// counter. nil on a plain (non-windowed) maintainer.
type windowRing struct {
	// epochs is the configured window span W: queries cover the live epoch
	// plus up to W−1 sealed ones, and older slots are dropped at Advance.
	epochs int
	// tick counts completed epochs (Advance calls) over the engine's life.
	tick uint64
	// slots holds the sealed epoch summaries, oldest first; len ≤ epochs−1.
	// Each is immutable (core.NewHistogram copies), so snapshots and merges
	// may share the pointers.
	slots []*core.Histogram
}

// included returns the sealed slots a window of the given span covers: the
// newest window−1 of them (the live epoch is the window's first epoch), or
// every retained slot when window is 0.
func (r *windowRing) included(window int) []*core.Histogram {
	if window <= 0 || window-1 >= len(r.slots) {
		return r.slots
	}
	return r.slots[len(r.slots)-(window-1):]
}

// decayFactor is the exponential-decay weight of an epoch aged `age` epochs
// (the live epoch is age 0): 2^(−age/halflife). halflife ≤ 0 disables decay.
// Age 0 yields exactly 1, so the live epoch is never scaled.
func decayFactor(age int, halflife float64) float64 {
	if halflife <= 0 || age == 0 {
		return 1
	}
	return math.Exp2(-float64(age) / halflife)
}

// checkOver validates the windowed-query parameters against the ring.
func (r *windowRing) checkOver(window int, halflife float64) error {
	if r == nil {
		return fmt.Errorf("stream: windowed query on a non-windowed engine")
	}
	if window < 0 || window > r.epochs {
		return fmt.Errorf("stream: window %d out of [0, %d] epochs", window, r.epochs)
	}
	if halflife < 0 || math.IsNaN(halflife) || math.IsInf(halflife, 0) {
		return fmt.Errorf("stream: half-life %v must be a finite number of epochs ≥ 0", halflife)
	}
	return nil
}

// NewWindowedMaintainer builds a windowed maintainer over [1, n] targeting
// k-piece summaries and retaining a sliding window of `epochs` epochs (the
// live one plus epochs−1 sealed). Call Advance at each epoch boundary.
// bufferCap and opts follow NewMaintainer.
func NewWindowedMaintainer(n, k, epochs, bufferCap int, opts core.Options) (*Maintainer, error) {
	if epochs < 1 {
		return nil, fmt.Errorf("stream: window of %d epochs (want ≥ 1)", epochs)
	}
	m, err := NewMaintainer(n, k, bufferCap, opts)
	if err != nil {
		return nil, err
	}
	m.win = newWindowRing(epochs)
	return m, nil
}

func newWindowRing(epochs int) *windowRing {
	return &windowRing{epochs: epochs, slots: make([]*core.Histogram, 0, epochs-1)}
}

// Windowed reports whether the maintainer retains a sliding epoch window.
func (m *Maintainer) Windowed() bool { return m.win != nil }

// WindowEpochs returns the configured window span in epochs (0 on a plain
// maintainer).
func (m *Maintainer) WindowEpochs() int {
	if m.win == nil {
		return 0
	}
	return m.win.epochs
}

// Tick returns how many epochs have completed (Advance calls).
func (m *Maintainer) Tick() uint64 {
	if m.win == nil {
		return 0
	}
	return m.win.tick
}

// Advance seals the current epoch and starts the next one: pending updates
// are compacted, the epoch's O(k)-piece summary is pushed onto the ring
// (dropping the oldest slot once WindowEpochs−1 are retained), and the live
// maintainer resets to empty — so the new epoch's compaction groupings are
// bit-identical to a fresh maintainer's, the property the re-fit oracle
// tests rely on.
func (m *Maintainer) Advance() error {
	if m.win == nil {
		return fmt.Errorf("stream: Advance on a non-windowed engine")
	}
	if err := m.compactFull(); err != nil {
		return err
	}
	sealed := m.materialize()
	r := m.win
	if r.epochs > 1 {
		if len(r.slots) == r.epochs-1 {
			copy(r.slots, r.slots[1:])
			r.slots = r.slots[:len(r.slots)-1]
		}
		r.slots = append(r.slots, sealed)
	}
	r.tick++
	m.view = summaryView{}
	m.hist = nil
	return nil
}

// estimateOver is the windowed range-sum kernel shared by Maintainer and
// Sharded: scaled sealed-epoch masses (oldest first), then the live view,
// then the pending logs in arrival order — a fixed summation order, so
// answers are bit-identical across runs and restores. Callers validate the
// range and window first. Allocation-free after each sealed histogram's
// lazy query index is built.
func (m *Maintainer) estimateOver(a, b, window int, halflife float64, inflight, pending []sparse.Entry) float64 {
	var total float64
	slots := m.win.included(window)
	for i, h := range slots {
		total += decayFactor(len(slots)-i, halflife) * h.RangeSum(a, b)
	}
	if !m.view.empty() {
		total += m.view.rangeSum(a, b)
	}
	for _, e := range inflight {
		if a <= e.Index && e.Index <= b {
			total += e.Value
		}
	}
	for _, e := range pending {
		if a <= e.Index && e.Index <= b {
			total += e.Value
		}
	}
	return total
}

// EstimateRangeOver answers a range sum over the newest `window` epochs
// (0 = every retained epoch), scaling each sealed epoch's mass by
// 2^(−age/halflife) (halflife 0 = no decay; the live epoch has age 0 and is
// never scaled). With window 0 and halflife 0 it equals EstimateRange.
func (m *Maintainer) EstimateRangeOver(a, b, window int, halflife float64) (float64, error) {
	if err := m.win.checkOver(window, halflife); err != nil {
		return 0, err
	}
	if a < 1 || b > m.n || a > b {
		return 0, fmt.Errorf("stream: range [%d, %d] invalid for domain [1, %d]", a, b, m.n)
	}
	return m.estimateOver(a, b, window, halflife, nil, m.buffer), nil
}

// scaleHist returns h with every piece value (hence every mass) scaled by f,
// sharing h itself when f is exactly 1. The result is immutable.
func scaleHist(h *core.Histogram, f float64) *core.Histogram {
	if f == 1 {
		return h
	}
	pieces := h.Pieces()
	vals := make([]float64, len(pieces))
	for i, pc := range pieces {
		vals[i] = f * pc.Value
	}
	return core.NewHistogram(h.N(), h.Partition(), vals)
}

// windowSummaries appends the (scaled) per-epoch summaries a window covers —
// sealed slots oldest first, then the live epoch's materialized summary —
// ready for one MergeAll sweep. The caller must have compacted the live
// epoch (compactFull / drain) first.
func (m *Maintainer) windowSummaries(dst []*core.Histogram, window int, halflife float64) []*core.Histogram {
	slots := m.win.included(window)
	for i, h := range slots {
		dst = append(dst, scaleHist(h, decayFactor(len(slots)-i, halflife)))
	}
	if !m.view.empty() {
		dst = append(dst, m.materialize())
	}
	return dst
}

// SummaryOver merges the window's per-epoch summaries — each sealed epoch
// scaled by its decay factor — into one O(k)-piece histogram with the k-way
// MergeAll sweep. window 0 covers every retained epoch; halflife 0 disables
// decay. The scale-invariance of the merging guarantee means the result is
// a √(1+δ)·opt summary of the decayed window stream.
func (m *Maintainer) SummaryOver(window int, halflife float64) (*core.Histogram, error) {
	if err := m.win.checkOver(window, halflife); err != nil {
		return nil, err
	}
	if err := m.compactFull(); err != nil {
		return nil, err
	}
	hs := m.windowSummaries(nil, window, halflife)
	if len(hs) == 0 {
		return zeroHistogram(m.n), nil
	}
	return MergeAll(hs, m.k, m.opts)
}

func zeroHistogram(n int) *core.Histogram {
	return core.NewHistogram(n, interval.Partition{interval.New(1, n)}, []float64{0})
}

// --- Sharded windowed engine. ---

// NewWindowedSharded builds a sharded windowed maintainer: every shard
// retains its own epoch ring, advanced in lockstep by Advance. Parameters
// follow NewSharded plus the window span in epochs.
func NewWindowedSharded(n, k, epochs, shards, bufferCap int, opts core.Options) (*Sharded, error) {
	if epochs < 1 {
		return nil, fmt.Errorf("stream: window of %d epochs (want ≥ 1)", epochs)
	}
	s, err := NewSharded(n, k, shards, bufferCap, opts)
	if err != nil {
		return nil, err
	}
	s.windowEpochs = epochs
	for _, sh := range s.shards {
		sh.m.win = newWindowRing(epochs)
	}
	return s, nil
}

// Windowed reports whether the engine retains a sliding epoch window.
func (s *Sharded) Windowed() bool { return s.windowEpochs > 0 }

// WindowEpochs returns the configured window span in epochs (0 when plain).
func (s *Sharded) WindowEpochs() int { return s.windowEpochs }

// Tick returns how many epochs have completed (Advance calls). Shards
// advance in lockstep, so one shard's counter is the engine's.
func (s *Sharded) Tick() uint64 {
	if s.windowEpochs == 0 {
		return 0
	}
	sh := s.shards[0]
	sh.mu.Lock()
	t := sh.m.win.tick
	sh.mu.Unlock()
	return t
}

// Advance seals the current epoch on every shard: each shard is drained
// (in-flight compaction waited out, pending log folded) and its maintainer
// advanced under the shard lock, bumping the shard version so delta
// replication ships the rotated ring. Concurrent producers see a per-shard
// epoch boundary, the same consistency Summary and Snapshot offer.
//
// A per-shard failure does not stop the sweep: the remaining shards are
// still sealed so the healthy rings stay in lockstep (Tick reads shard 0),
// and the joined errors are returned. A failed shard is poisoned (its err
// is sticky), so every later ingest or query touching it keeps failing —
// windowed answers from the engine are unspecified after a non-nil Advance.
func (s *Sharded) Advance() error {
	if s.windowEpochs == 0 {
		return fmt.Errorf("stream: Advance on a non-windowed engine")
	}
	var errs []error
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.drainLocked()
		if err == nil {
			if err = sh.m.Advance(); err != nil {
				sh.err = err
			}
		}
		if err == nil {
			sh.version++
		}
		sh.mu.Unlock()
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// EstimateRangeOver answers a range sum over the newest `window` epochs
// across every shard (0 = every retained epoch), with each sealed epoch's
// mass scaled by 2^(−age/halflife). Like EstimateRange it never forces or
// waits for a compaction: per shard it reads the ring, the installed view,
// and the pending logs under the shard lock.
func (s *Sharded) EstimateRangeOver(a, b, window int, halflife float64) (float64, error) {
	if s.windowEpochs == 0 {
		return 0, fmt.Errorf("stream: windowed query on a non-windowed engine")
	}
	if a < 1 || b > s.n || a > b {
		return 0, fmt.Errorf("stream: range [%d, %d] invalid for domain [1, %d]", a, b, s.n)
	}
	if window < 0 || window > s.windowEpochs {
		return 0, fmt.Errorf("stream: window %d out of [0, %d] epochs", window, s.windowEpochs)
	}
	if halflife < 0 || math.IsNaN(halflife) || math.IsInf(halflife, 0) {
		return 0, fmt.Errorf("stream: half-life %v must be a finite number of epochs ≥ 0", halflife)
	}
	var total float64
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.err != nil {
			err := sh.err
			sh.mu.Unlock()
			return 0, err
		}
		total += sh.m.estimateOver(a, b, window, halflife, sh.inflight, sh.active)
		sh.mu.Unlock()
	}
	return total, nil
}

// SummaryOver drains every shard and merges the window's per-epoch, per-shard
// summaries — sealed epochs scaled by their decay factors — into one
// O(k)-piece global summary with MergeAll. window 0 covers every retained
// epoch; halflife 0 disables decay.
func (s *Sharded) SummaryOver(window int, halflife float64) (*core.Histogram, error) {
	if s.windowEpochs == 0 {
		return nil, fmt.Errorf("stream: windowed summary on a non-windowed engine")
	}
	if window < 0 || window > s.windowEpochs {
		return nil, fmt.Errorf("stream: window %d out of [0, %d] epochs", window, s.windowEpochs)
	}
	if halflife < 0 || math.IsNaN(halflife) || math.IsInf(halflife, 0) {
		return nil, fmt.Errorf("stream: half-life %v must be a finite number of epochs ≥ 0", halflife)
	}
	var hs []*core.Histogram
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.drainLocked()
		if err == nil {
			// Sealed slots are immutable and scaleHist copies when scaling,
			// so the collected histograms are safe to merge outside the lock.
			hs = sh.m.windowSummaries(hs, window, halflife)
		}
		sh.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	if len(hs) == 0 {
		return zeroHistogram(s.n), nil
	}
	return MergeAll(hs, s.k, s.opts)
}
