package stream

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
)

// The windowed/decayed contract, pinned bit-for-bit:
//
//  1. Every sealed epoch's ring slot is bit-identical to a brute-force
//     re-fit: a fresh Maintainer fed exactly that epoch's updates.
//  2. EstimateRangeOver(a, b, w, hl) is bit-identical to the explicitly
//     mass-scaled sum over the re-fit slots (in the engine's summation
//     order) plus the live epoch's answer.
//  3. SummaryOver is bit-identical to MergeAll over the explicitly scaled
//     re-fit summaries.
//  4. All of the above survive snapshot→restore and WAL recovery
//     mid-window.

// epochSchedule cuts the fixture stream of windowTotal updates into epochs
// of deliberately adversarial sizes: empty epochs, sub-buffer epochs, and
// epochs spanning many compactions.
var epochSchedule = []int{137, 0, 523, 64, 1, 900, 0, 311}

const (
	windowN     = 4000
	windowK     = 8
	windowCap   = 64
	windowTotal = 137 + 523 + 64 + 1 + 900 + 311 // sum of epochSchedule
)

// epochStart returns the fixture index where epoch e begins (e may be
// len(epochSchedule), marking the stream's end).
func epochStart(e int) int {
	start := 0
	for i := 0; i < e; i++ {
		start += epochSchedule[i]
	}
	return start
}

// epochBounds returns the fixture index range [start, end) of epoch e.
func epochBounds(e int) (start, end int) {
	start = epochStart(e)
	return start, start + epochSchedule[e]
}

// feedEpochs drives m through the first `epochs` entries of the schedule
// (advancing after each) and then feeds `tail` updates of the next epoch
// without advancing — the mid-window live state.
func feedEpochs(t *testing.T, add func(p int, w float64) error, advance func() error, epochs, tail int, points []int, weights []float64) {
	t.Helper()
	idx := 0
	for e := 0; e < epochs; e++ {
		for i := 0; i < epochSchedule[e]; i++ {
			if err := add(points[idx], weights[idx]); err != nil {
				t.Fatal(err)
			}
			idx++
		}
		if err := advance(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < tail; i++ {
		if err := add(points[idx], weights[idx]); err != nil {
			t.Fatal(err)
		}
		idx++
	}
}

// refitEpoch brute-force re-fits one epoch's raw updates on a fresh plain
// maintainer and returns its full-history summary — the oracle a sealed
// ring slot must match bit-for-bit.
func refitEpoch(t *testing.T, e int, points []int, weights []float64) *core.Histogram {
	t.Helper()
	m, err := NewMaintainer(windowN, windowK, windowCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	start, end := epochBounds(e)
	for i := start; i < end; i++ {
		if err := m.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	h, err := m.Summary()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// liveOracle re-fits the live (unsealed) epoch: a fresh plain maintainer fed
// the tail updates, queried without compacting — mirroring the windowed
// engine's view + pending-buffer scan.
func liveOracle(t *testing.T, epochs, tail int, points []int, weights []float64) *Maintainer {
	t.Helper()
	m, err := NewMaintainer(windowN, windowK, windowCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	start := epochStart(epochs)
	for i := start; i < start+tail; i++ {
		if err := m.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// addLiveTerms mirrors estimateOver's live-epoch term order on a re-fit
// maintainer, extending the oracle's single running accumulator: installed
// view mass, then pending updates in arrival order. Bit-identity demands the
// oracle add terms in exactly the engine's order — float addition is not
// associative, so summing the live epoch separately and adding the subtotal
// would drift by an ulp.
func addLiveTerms(acc float64, m *Maintainer, a, b int) float64 {
	if !m.view.empty() {
		acc += m.view.rangeSum(a, b)
	}
	for _, e := range m.buffer {
		if a <= e.Index && e.Index <= b {
			acc += e.Value
		}
	}
	return acc
}

// probeRanges is the query grid every bit-identity check sweeps.
func probeRanges(n int) [][2]int {
	out := [][2]int{{1, n}, {1, 1}, {n, n}}
	for a := 1; a <= n; a += 379 {
		b := a + 211
		if b > n {
			b = n
		}
		out = append(out, [2]int{a, b}, [2]int{a, a})
	}
	return out
}

func bitsEqual(t *testing.T, label string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s = %v (%#x), want %v (%#x)",
			label, got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

// TestWindowedMatchesPerEpochRefit pins contract points 1 and 2 (undecayed)
// on the serial engine across the adversarial schedule, for every window
// span and several mid-window cut points.
func TestWindowedMatchesPerEpochRefit(t *testing.T) {
	points, weights := streamFixture(windowN, windowTotal, 42)
	const W = 4 // retains the live epoch + 3 sealed
	for _, cut := range []struct{ epochs, tail int }{
		{0, 50},  // first epoch, mid-buffer
		{2, 0},   // epoch boundary, empty live epoch
		{5, 437}, // ring full, eviction happened, live epoch spans compactions
		{8, 0},   // every epoch sealed
	} {
		m, err := NewWindowedMaintainer(windowN, windowK, W, windowCap, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		feedEpochs(t, m.Add, m.Advance, cut.epochs, cut.tail, points, weights)

		// Contract 1: each retained slot equals the brute-force re-fit of
		// its epoch, oldest evicted first.
		sealed := cut.epochs
		if sealed > W-1 {
			sealed = W - 1
		}
		if len(m.win.slots) != sealed {
			t.Fatalf("cut %+v: %d slots retained, want %d", cut, len(m.win.slots), sealed)
		}
		for i, slot := range m.win.slots {
			e := cut.epochs - sealed + i
			histogramsBitIdentical(t, slot, refitEpoch(t, e, points, weights), "sealed epoch slot")
		}

		// Contract 2 (halflife 0): windowed answers equal the refit sum in
		// the engine's summation order, for every valid window span.
		live := liveOracle(t, cut.epochs, cut.tail, points, weights)
		for w := 0; w <= W; w++ {
			included := sealed
			if w >= 1 && w-1 < sealed {
				included = w - 1
			}
			for _, pr := range probeRanges(windowN) {
				a, b := pr[0], pr[1]
				var want float64
				for i := sealed - included; i < sealed; i++ {
					e := cut.epochs - sealed + i
					want += refitEpoch(t, e, points, weights).RangeSum(a, b)
				}
				want = addLiveTerms(want, live, a, b)
				got, err := m.EstimateRangeOver(a, b, w, 0)
				if err != nil {
					t.Fatal(err)
				}
				bitsEqual(t, "EstimateRangeOver", got, want)
				if w == 0 {
					// The plain query on a windowed engine is the full
					// retained window.
					plain, err := m.EstimateRange(a, b)
					if err != nil {
						t.Fatal(err)
					}
					bitsEqual(t, "EstimateRange delegation", plain, got)
				}
			}
		}
	}
}

// TestDecayedMatchesMassScaledRefit pins contract points 2 and 3 with decay:
// answers and merged summaries must equal the explicitly mass-scaled
// re-fits.
func TestDecayedMatchesMassScaledRefit(t *testing.T) {
	points, weights := streamFixture(windowN, windowTotal, 97)
	const W, epochs, tail = 4, 5, 437
	m, err := NewWindowedMaintainer(windowN, windowK, W, windowCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	feedEpochs(t, m.Add, m.Advance, epochs, tail, points, weights)
	live := liveOracle(t, epochs, tail, points, weights)

	for _, hl := range []float64{0.5, 1, 2.75} {
		for w := 0; w <= W; w++ {
			included := W - 1
			if w >= 1 {
				included = w - 1
			}
			// Scaled refit sum in the engine's order: oldest slot first at
			// age = included, ..., newest at age 1, live epoch unscaled.
			for _, pr := range probeRanges(windowN) {
				a, b := pr[0], pr[1]
				var want float64
				for i := 0; i < included; i++ {
					e := epochs - included + i
					factor := math.Exp2(-float64(included-i) / hl)
					want += factor * refitEpoch(t, e, points, weights).RangeSum(a, b)
				}
				want = addLiveTerms(want, live, a, b)
				got, err := m.EstimateRangeOver(a, b, w, hl)
				if err != nil {
					t.Fatal(err)
				}
				bitsEqual(t, "decayed EstimateRangeOver", got, want)
			}

			// Contract 3: SummaryOver equals MergeAll over explicitly
			// scaled re-fit inputs (the live epoch compacted, unscaled).
			inputs := make([]*core.Histogram, 0, W)
			for i := 0; i < included; i++ {
				e := epochs - included + i
				h := refitEpoch(t, e, points, weights)
				factor := math.Exp2(-float64(included-i) / hl)
				vals := make([]float64, h.NumPieces())
				for j, pc := range h.Pieces() {
					vals[j] = factor * pc.Value
				}
				inputs = append(inputs, core.NewHistogram(h.N(), h.Partition(), vals))
			}
			liveSum, err := live.Summary()
			if err != nil {
				t.Fatal(err)
			}
			inputs = append(inputs, liveSum)
			want, err := MergeAll(inputs, windowK, core.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.SummaryOver(w, hl)
			if err != nil {
				t.Fatal(err)
			}
			histogramsBitIdentical(t, got, want, "decayed SummaryOver")
		}
	}
}

// TestWindowedShardedMatchesShardOracle pins the sharded engine against S
// independent windowed maintainers advanced in lockstep — the shard-major
// summation order EstimateRangeOver documents.
func TestWindowedShardedMatchesShardOracle(t *testing.T) {
	points, weights := streamFixture(windowN, windowTotal, 7)
	const W, P, epochs, tail = 3, 4, 5, 437
	s, err := NewWindowedSharded(windowN, windowK, W, P, windowCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	oracles := make([]*Maintainer, P)
	for i := range oracles {
		if oracles[i], err = NewWindowedMaintainer(windowN, windowK, W, windowCap, core.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
	}
	add := func(p int, w float64) error {
		if err := s.Add(p, w); err != nil {
			return err
		}
		return oracles[s.ShardOf(p)].Add(p, w)
	}
	advance := func() error {
		if err := s.Advance(); err != nil {
			return err
		}
		for _, o := range oracles {
			if err := o.Advance(); err != nil {
				return err
			}
		}
		return nil
	}
	feedEpochs(t, add, advance, epochs, tail, points, weights)
	if got, want := s.Tick(), uint64(epochs); got != want {
		t.Fatalf("Tick() = %d, want %d", got, want)
	}
	// Quiesce background compactions so every shard's pending log matches
	// its oracle's buffer entry-for-entry (deterministic, not timing-bound).
	waitQuiesce(s)
	for _, hl := range []float64{0, 1.5} {
		for w := 0; w <= W; w++ {
			for _, pr := range probeRanges(windowN) {
				a, b := pr[0], pr[1]
				// Mirror the engine's grouping exactly: each shard's terms
				// (scaled slots oldest first, then view, then pending
				// updates) accumulate into a per-shard subtotal, and the
				// subtotals are added shard-major.
				var want float64
				for _, o := range oracles {
					var sub float64
					slots := o.win.included(w)
					for i, h := range slots {
						sub += decayFactor(len(slots)-i, hl) * h.RangeSum(a, b)
					}
					want += addLiveTerms(sub, o, a, b)
				}
				got, err := s.EstimateRangeOver(a, b, w, hl)
				if err != nil {
					t.Fatal(err)
				}
				bitsEqual(t, "sharded EstimateRangeOver", got, want)
			}
		}
	}
	// SummaryOver must succeed and answer range sums consistently with the
	// certified guarantee's shape (exact total mass over the whole domain).
	h, err := s.SummaryOver(2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.EstimateRangeOver(1, windowN, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.RangeSum(1, windowN); math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Fatalf("SummaryOver total mass %v, want %v", got, want)
	}
}

// TestWindowedSnapshotRestoreMidWindow pins contract point 4 for both
// engines: a mid-window snapshot restores bit-identically (including ring
// and tick), re-encodes to identical bytes, and resumes bit-identically
// through further updates and epoch seals.
func TestWindowedSnapshotRestoreMidWindow(t *testing.T) {
	points, weights := streamFixture(windowN, windowTotal, 1234)
	const W, epochs, tail = 4, 5, 437

	t.Run("maintainer", func(t *testing.T) {
		m, err := NewWindowedMaintainer(windowN, windowK, W, windowCap, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		feedEpochs(t, m.Add, m.Advance, epochs, tail, points, weights)
		if len(m.buffer) == 0 {
			t.Fatal("cut leaves no pending buffer; adjust tail")
		}
		var blob bytes.Buffer
		if err := m.Snapshot(&blob); err != nil {
			t.Fatal(err)
		}
		snap := append([]byte{}, blob.Bytes()...)
		restored, err := RestoreMaintainer(bytes.NewReader(snap))
		if err != nil {
			t.Fatal(err)
		}
		if !restored.Windowed() || restored.WindowEpochs() != W || restored.Tick() != m.Tick() {
			t.Fatalf("restored windowed=%v epochs=%d tick=%d, want true/%d/%d",
				restored.Windowed(), restored.WindowEpochs(), restored.Tick(), W, m.Tick())
		}
		blob.Reset()
		if err := restored.Snapshot(&blob); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, blob.Bytes()) {
			t.Fatal("snapshot → restore → snapshot bytes differ")
		}
		// Resume both through the rest of the schedule, windowed answers
		// checked after every epoch seal.
		idx := 0
		for e := 0; e < epochs; e++ {
			idx += epochSchedule[e]
		}
		idx += tail
		for e := epochs; e < len(epochSchedule); e++ {
			_, end := epochBounds(e)
			for ; idx < end; idx++ {
				if err := m.Add(points[idx], weights[idx]); err != nil {
					t.Fatal(err)
				}
				if err := restored.Add(points[idx], weights[idx]); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.Advance(); err != nil {
				t.Fatal(err)
			}
			if err := restored.Advance(); err != nil {
				t.Fatal(err)
			}
			for w := 0; w <= W; w++ {
				want, err1 := m.EstimateRangeOver(1, windowN, w, 1.5)
				got, err2 := restored.EstimateRangeOver(1, windowN, w, 1.5)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				bitsEqual(t, "resumed EstimateRangeOver", got, want)
			}
		}
	})

	t.Run("sharded", func(t *testing.T) {
		s, err := NewWindowedSharded(windowN, windowK, W, 4, windowCap, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		feedEpochs(t, s.Add, s.Advance, epochs, tail, points, weights)
		var blob bytes.Buffer
		if err := s.Snapshot(&blob); err != nil {
			t.Fatal(err)
		}
		snap := append([]byte{}, blob.Bytes()...)
		restored, err := RestoreSharded(bytes.NewReader(snap))
		if err != nil {
			t.Fatal(err)
		}
		if !restored.Windowed() || restored.WindowEpochs() != W || restored.Tick() != s.Tick() {
			t.Fatalf("restored windowed=%v epochs=%d tick=%d, want true/%d/%d",
				restored.Windowed(), restored.WindowEpochs(), restored.Tick(), W, s.Tick())
		}
		blob.Reset()
		if err := restored.Snapshot(&blob); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, blob.Bytes()) {
			t.Fatal("snapshot → restore → snapshot bytes differ")
		}
		for _, hl := range []float64{0, 2} {
			for w := 0; w <= W; w++ {
				for _, pr := range probeRanges(windowN) {
					want, err1 := s.EstimateRangeOver(pr[0], pr[1], w, hl)
					got, err2 := restored.EstimateRangeOver(pr[0], pr[1], w, hl)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					bitsEqual(t, "restored sharded EstimateRangeOver", got, want)
				}
			}
		}
	})
}

// TestWindowedDeltaReplication pins the replication path: a complete delta
// rebuilds a windowed engine bit-identically (ring included), and an
// incremental delta after further epochs carries the rotated rings of the
// changed shards.
func TestWindowedDeltaReplication(t *testing.T) {
	points, weights := streamFixture(windowN, windowTotal, 55)
	const W, P, epochs, tail = 3, 4, 3, 200
	s, err := NewWindowedSharded(windowN, windowK, W, P, windowCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	feedEpochs(t, s.Add, s.Advance, epochs, tail, points, weights)

	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := cp.AppendDelta(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseShardedDelta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Complete() {
		t.Fatal("nil-since delta is not complete")
	}
	replica, err := NewShardedFromDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if !replica.Windowed() || replica.WindowEpochs() != W || replica.Tick() != s.Tick() {
		t.Fatalf("replica windowed=%v epochs=%d tick=%d, want true/%d/%d",
			replica.Windowed(), replica.WindowEpochs(), replica.Tick(), W, s.Tick())
	}
	checkAgree := func(label string) {
		t.Helper()
		for w := 0; w <= W; w++ {
			for _, pr := range probeRanges(windowN) {
				want, err1 := s.EstimateRangeOver(pr[0], pr[1], w, 1.0)
				got, err2 := replica.EstimateRangeOver(pr[0], pr[1], w, 1.0)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				bitsEqual(t, label, got, want)
			}
		}
	}
	checkAgree("rebuilt replica")

	// Advance the primary (rotating every ring) plus a little more ingest,
	// then ship only the changed shards.
	base := cp.Versions(nil)
	idx := 0
	for e := 0; e < epochs; e++ {
		idx += epochSchedule[e]
	}
	idx += tail
	for i := 0; i < 100; i++ {
		if err := s.Add(points[idx+i], weights[idx+i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Advance(); err != nil {
		t.Fatal(err)
	}
	cp2, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	frame2, err := cp2.AppendDelta(nil, base)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseShardedDelta(frame2)
	if err != nil {
		t.Fatal(err)
	}
	// Advance bumps every shard's version, so every shard must be carried.
	if d2.ChangedShards() != P {
		t.Fatalf("delta after Advance carries %d of %d shards", d2.ChangedShards(), P)
	}
	if err := replica.ApplyDelta(d2); err != nil {
		t.Fatal(err)
	}
	if replica.Tick() != s.Tick() {
		t.Fatalf("replica tick %d after delta, want %d", replica.Tick(), s.Tick())
	}
	checkAgree("delta-applied replica")

	// Shape mismatch: a windowed delta must not apply to a plain engine.
	plain, err := NewSharded(windowN, windowK, P, windowCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ApplyDelta(d2); err == nil {
		t.Fatal("windowed delta applied to a plain engine")
	}
}

// TestWindowedWALRecoveryMidWindow pins contract point 4 for the durable
// layer: epoch boundaries are WAL records, so recovery after a crash
// mid-window resumes the ring bit-identically and keeps resuming through
// further epochs.
func TestWindowedWALRecoveryMidWindow(t *testing.T) {
	points, weights := streamFixture(windowN, windowTotal, 2026)
	const W, epochs, tail = 3, 3, 200

	t.Run("sharded", func(t *testing.T) {
		dir := t.TempDir()
		d, err := NewDurableSharded(windowN, windowK, 2, windowCap, core.DefaultOptions(), DurableOptions{
			Dir: dir, SyncEvery: 1, CheckpointEvery: -1, WindowEpochs: W,
		})
		if err != nil {
			t.Fatal(err)
		}
		feedEpochs(t, d.Add, d.Advance, epochs, tail, points, weights)
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
		// Crash: recover from a copy of the live directory, no Close.
		rec, err := RecoverDurableSharded(DurableOptions{Dir: copyDir(t, dir), SyncEvery: 1, CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		defer d.Close()
		if !rec.Windowed() || rec.Engine().WindowEpochs() != W || rec.Engine().Tick() != uint64(epochs) {
			t.Fatalf("recovered windowed=%v epochs=%d tick=%d, want true/%d/%d",
				rec.Windowed(), rec.Engine().WindowEpochs(), rec.Engine().Tick(), W, epochs)
		}
		// Quiesce background compactions on both sides: the view/pending split
		// at query time is timing-dependent, and the fold is lossy, so the two
		// engines only answer bit-identically once both have installed every
		// full-buffer fold (the fold *boundaries* are deterministic).
		waitQuiesce(d.Engine())
		waitQuiesce(rec.Engine())
		for w := 0; w <= W; w++ {
			for _, pr := range probeRanges(windowN) {
				want, err1 := d.EstimateRangeOver(pr[0], pr[1], w, 1.0)
				got, err2 := rec.EstimateRangeOver(pr[0], pr[1], w, 1.0)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				bitsEqual(t, "recovered EstimateRangeOver", got, want)
			}
		}
		// Resume both through one more epoch seal.
		idx := 0
		for e := 0; e < epochs; e++ {
			idx += epochSchedule[e]
		}
		idx += tail
		for i := 0; i < 150; i++ {
			if err := d.Add(points[idx+i], weights[idx+i]); err != nil {
				t.Fatal(err)
			}
			if err := rec.Add(points[idx+i], weights[idx+i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Advance(); err != nil {
			t.Fatal(err)
		}
		if err := rec.Advance(); err != nil {
			t.Fatal(err)
		}
		want, err1 := d.EstimateRangeOver(1, windowN, W, 0.5)
		got, err2 := rec.EstimateRangeOver(1, windowN, W, 0.5)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		bitsEqual(t, "resumed recovered EstimateRangeOver", got, want)
	})

	t.Run("maintainer", func(t *testing.T) {
		dir := t.TempDir()
		d, err := NewDurableMaintainer(windowN, windowK, windowCap, core.DefaultOptions(), DurableOptions{
			Dir: dir, SyncEvery: 1, CheckpointEvery: -1, WindowEpochs: W,
		})
		if err != nil {
			t.Fatal(err)
		}
		feedEpochs(t, d.Add, d.Advance, epochs, tail, points, weights)
		if err := d.Sync(); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverDurableMaintainer(DurableOptions{Dir: copyDir(t, dir), SyncEvery: 1, CheckpointEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer rec.Close()
		defer d.Close()
		if !rec.Windowed() || rec.Engine().Tick() != uint64(epochs) {
			t.Fatalf("recovered windowed=%v tick=%d, want true/%d", rec.Windowed(), rec.Engine().Tick(), epochs)
		}
		for w := 0; w <= W; w++ {
			want, err1 := d.EstimateRangeOver(1, windowN, w, 1.0)
			got, err2 := rec.EstimateRangeOver(1, windowN, w, 1.0)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			bitsEqual(t, "recovered maintainer EstimateRangeOver", got, want)
		}
	})
}

// TestWindowedValidation pins the parameter-validation surface.
func TestWindowedValidation(t *testing.T) {
	if _, err := NewWindowedMaintainer(100, 4, 0, 0, core.DefaultOptions()); err == nil {
		t.Fatal("0-epoch window accepted")
	}
	if _, err := NewWindowedSharded(100, 4, -1, 2, 0, core.DefaultOptions()); err == nil {
		t.Fatal("negative window accepted")
	}
	plain, err := NewMaintainer(100, 4, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Advance(); err == nil {
		t.Fatal("Advance on a plain maintainer accepted")
	}
	if _, err := plain.EstimateRangeOver(1, 10, 0, 0); err == nil {
		t.Fatal("windowed query on a plain maintainer accepted")
	}
	plainS, err := NewSharded(100, 4, 2, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := plainS.Advance(); err == nil {
		t.Fatal("Advance on a plain sharded engine accepted")
	}
	if _, err := plainS.SummaryOver(0, 0); err == nil {
		t.Fatal("windowed summary on a plain sharded engine accepted")
	}

	m, err := NewWindowedMaintainer(100, 4, 3, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []struct {
		w  int
		hl float64
	}{
		{-1, 0}, {4, 0}, {0, -1}, {0, math.NaN()}, {0, math.Inf(1)},
	} {
		if _, err := m.EstimateRangeOver(1, 100, bad.w, bad.hl); err == nil {
			t.Fatalf("window=%d halflife=%v accepted", bad.w, bad.hl)
		}
		if _, err := m.SummaryOver(bad.w, bad.hl); err == nil {
			t.Fatalf("SummaryOver window=%d halflife=%v accepted", bad.w, bad.hl)
		}
	}
	if _, err := m.EstimateRangeOver(0, 200, 1, 0); err == nil {
		t.Fatal("out-of-domain range accepted")
	}
	// A 1-epoch window never retains sealed slots: advancing just resets.
	one, err := NewWindowedMaintainer(100, 4, 1, 0, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := one.Add(5, 2); err != nil {
		t.Fatal(err)
	}
	if err := one.Advance(); err != nil {
		t.Fatal(err)
	}
	if got, _ := one.EstimateRange(1, 100); got != 0 {
		t.Fatalf("1-epoch window retained mass %v after Advance", got)
	}
	if one.Tick() != 1 {
		t.Fatalf("tick %d, want 1", one.Tick())
	}
}

// TestShardedAdvanceSealsHealthyShardsOnError pins the lockstep contract: a
// per-shard seal failure does not stop the sweep — every healthy shard's
// ring still rotates (so Tick, read from shard 0, stays honest) and the
// failure is in the joined error. The failed shard stays poisoned, so
// windowed answers from the engine keep failing rather than silently
// serving out-of-lockstep rings.
func TestShardedAdvanceSealsHealthyShardsOnError(t *testing.T) {
	const P = 4
	s, err := NewWindowedSharded(windowN, windowK, 3, P, windowCap, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := s.Add(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("injected shard failure")
	bad := s.shards[1]
	bad.mu.Lock()
	bad.err = sentinel
	bad.mu.Unlock()
	if err := s.Advance(); !errors.Is(err, sentinel) {
		t.Fatalf("Advance = %v, want the injected shard error", err)
	}
	for i, sh := range s.shards {
		want := uint64(1)
		if i == 1 {
			want = 0
		}
		if got := sh.m.win.tick; got != want {
			t.Errorf("shard %d tick = %d after Advance, want %d", i, got, want)
		}
	}
	if _, err := s.EstimateRangeOver(1, windowN, 0, 0); !errors.Is(err, sentinel) {
		t.Fatalf("windowed query on the poisoned engine = %v, want the injected error", err)
	}
}

// TestDurableAdvanceSealFailurePoisonsWAL pins the marker/seal asymmetry:
// when the epoch marker reaches the log but the engine seal then fails, the
// log durably records a boundary the engine never took — so the durable
// wrapper must poison the WAL, refusing to grow a history that replays
// differently than the live run.
func TestDurableAdvanceSealFailurePoisonsWAL(t *testing.T) {
	d, err := NewDurableSharded(windowN, windowK, 2, windowCap, core.DefaultOptions(), DurableOptions{
		Dir: t.TempDir(), CheckpointEvery: -1, WindowEpochs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Add(1, 1); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("injected shard failure")
	bad := d.Engine().shards[0]
	bad.mu.Lock()
	bad.err = sentinel
	bad.mu.Unlock()
	if err := d.Advance(); !errors.Is(err, sentinel) {
		t.Fatalf("durable Advance = %v, want the injected shard error", err)
	}
	if err := d.Add(2, 1); !errors.Is(err, sentinel) {
		t.Fatalf("ingest after a failed durable seal = %v, want the poison error", err)
	}
	if err := d.Sync(); !errors.Is(err, sentinel) {
		t.Fatalf("Sync after a failed durable seal = %v, want the poison error", err)
	}
}

// TestConcurrentAdvanceIngestRecovery pins the epoch-marker ordering fence:
// Advance holds the durability mutex exclusively, so with a sealer running
// concurrently with ingest every logged batch lands on the same side of the
// marker in the WAL as it did in the live engine, and crash recovery
// reproduces the per-epoch split — and every windowed answer — bit-
// identically. (With the marker on the shared read side, a batch could be
// logged after the marker but applied before the seal, silently moving it
// one epoch earlier on replay.)
func TestConcurrentAdvanceIngestRecovery(t *testing.T) {
	points, weights := streamFixture(windowN, windowTotal, 77)
	const W, seals = 4, 25
	dir := t.TempDir()
	d, err := NewDurableSharded(windowN, windowK, 2, windowCap, core.DefaultOptions(), DurableOptions{
		Dir: dir, CheckpointEvery: -1, WindowEpochs: W,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < seals; i++ {
			if err := d.Advance(); err != nil {
				done <- err
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
		done <- nil
	}()
	for i := 0; i < windowTotal; i++ {
		if err := d.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverDurableSharded(DurableOptions{Dir: copyDir(t, dir), CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	defer d.Close()
	if got, want := rec.Engine().Tick(), d.Engine().Tick(); got != want {
		t.Fatalf("recovered tick = %d, want %d", got, want)
	}
	waitQuiesce(d.Engine())
	waitQuiesce(rec.Engine())
	for w := 0; w <= W; w++ {
		for _, pr := range probeRanges(windowN) {
			want, err1 := d.EstimateRangeOver(pr[0], pr[1], w, 1.0)
			got, err2 := rec.EstimateRangeOver(pr[0], pr[1], w, 1.0)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			bitsEqual(t, "recovered concurrent EstimateRangeOver", got, want)
		}
	}
}
