package stream

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/sparse"
)

// Checkpoint/restore for windowed engines: the TagWindowed envelope.
//
// A windowed engine is a plain engine plus an epoch ring per maintainer, so
// its checkpoint reuses the frozen maintainerState layout verbatim and
// appends the ring as a suffix after each state:
//
//	encodeConfig | Int(windowEpochs) | Byte(mode) | body
//
// where mode 0 is a single maintainer (one state+ring) and mode 1 a sharded
// engine (Int(shardCount), then shardCount state+ring pairs). Each ring is
//
//	Uvarint(tick) | Int(slots) | per slot: DeltaInts(ends), PackedFloat64s(values)
//
// Sealed slots are O(k)-piece summaries over the full domain [1, n], oldest
// first. A restore rebuilds them with the same left-to-right prefix
// accumulation as the live engine, so a restored engine resumes
// bit-identically mid-window: same windowed answers, same future epoch
// seals, same compaction cadence.

// Windowed-envelope body modes.
const (
	windowedModeMaintainer byte = 0
	windowedModeSharded    byte = 1
)

// capturedRing is an epoch ring detached from its engine: the slot
// histograms are immutable, so capture is a pointer copy.
type capturedRing struct {
	tick  uint64
	slots []*core.Histogram
}

// captureRing copies the maintainer's ring state (nil when plain). Must run
// while the caller holds whatever lock guards the maintainer.
func captureRing(m *Maintainer) *capturedRing {
	if m.win == nil {
		return nil
	}
	return &capturedRing{
		tick:  m.win.tick,
		slots: append([]*core.Histogram(nil), m.win.slots...),
	}
}

func encodeRing(w *codec.Writer, r *capturedRing) {
	w.Uvarint(r.tick)
	w.Int(len(r.slots))
	for _, h := range r.slots {
		pieces := h.Pieces()
		ends := make([]int, len(pieces))
		vals := make([]float64, len(pieces))
		for i, pc := range pieces {
			ends[i] = pc.Hi
			vals[i] = pc.Value
		}
		w.DeltaInts(ends)
		w.PackedFloat64s(vals)
	}
}

func decodeRing(r *codec.Reader, n, epochs int) (*capturedRing, error) {
	tick, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	count, err := r.SliceLen()
	if err != nil {
		return nil, err
	}
	if count > epochs-1 {
		return nil, fmt.Errorf("stream: %d sealed epochs in a %d-epoch window", count, epochs)
	}
	if uint64(count) > tick {
		return nil, fmt.Errorf("stream: %d sealed epochs after %d ticks", count, tick)
	}
	ring := &capturedRing{tick: tick}
	if epochs > 1 {
		ring.slots = make([]*core.Histogram, 0, epochs-1)
	}
	for i := 0; i < count; i++ {
		ends, err := r.DeltaInts()
		if err != nil {
			return nil, err
		}
		vals, err := r.PackedFloat64s()
		if err != nil {
			return nil, err
		}
		if len(vals) != len(ends) {
			return nil, fmt.Errorf("stream: epoch slot with %d values for %d pieces", len(vals), len(ends))
		}
		part, err := interval.FromBoundaries(n, ends)
		if err != nil {
			return nil, fmt.Errorf("stream: epoch slot %d: %w", i, err)
		}
		ring.slots = append(ring.slots, core.NewHistogram(n, part, vals))
	}
	return ring, nil
}

// install moves the captured ring onto a windowed maintainer.
func (r *capturedRing) install(m *Maintainer) {
	m.win.tick = r.tick
	m.win.slots = append(m.win.slots[:0], r.slots...)
}

// snapshotWindowed writes the maintainer (mode 0) TagWindowed envelope.
func (m *Maintainer) snapshotWindowed(w io.Writer) error {
	enc := codec.NewWriter(w, codec.TagWindowed)
	encodeConfig(enc, m.n, m.k, m.opts, m.bufferCap)
	enc.Int(m.win.epochs)
	enc.Byte(windowedModeMaintainer)
	st := captureState(m, m.buffer)
	st.encode(enc)
	encodeRing(enc, st.ring)
	return enc.Close()
}

// writeWindowedSharded writes the sharded (mode 1) TagWindowed envelope from
// already-captured per-shard states (each carrying its ring). Shared by
// Sharded.Snapshot and Checkpoint.WriteTo.
func writeWindowedSharded(w io.Writer, n, k int, opts core.Options, bufferCap, epochs int, states []maintainerState) (int64, error) {
	enc := codec.NewWriter(w, codec.TagWindowed)
	encodeConfig(enc, n, k, opts, bufferCap)
	enc.Int(epochs)
	enc.Byte(windowedModeSharded)
	enc.Int(len(states))
	for i := range states {
		states[i].encode(enc)
		encodeRing(enc, states[i].ring)
	}
	err := enc.Close()
	return enc.Len(), err
}

// DecodeWindowedPayload reads and validates a TagWindowed checkpoint payload
// and rebuilds the engine it holds: a *Maintainer (mode 0) or a *Sharded
// (mode 1). Exported for the top-level tag dispatcher.
func DecodeWindowedPayload(dec *codec.Reader) (any, error) {
	n, k, opts, bufferCap, err := decodeConfig(dec)
	if err != nil {
		return nil, err
	}
	epochs, err := dec.Int()
	if err != nil {
		return nil, err
	}
	if epochs < 1 {
		return nil, fmt.Errorf("stream: windowed checkpoint with %d epochs", epochs)
	}
	mode, err := dec.ReadByte()
	if err != nil {
		return nil, err
	}
	switch mode {
	case windowedModeMaintainer:
		st, err := decodeState(dec, n)
		if err != nil {
			return nil, err
		}
		ring, err := decodeRing(dec, n, epochs)
		if err != nil {
			return nil, err
		}
		m, err := newMaintainer(n, k, bufferCap, opts)
		if err != nil {
			return nil, err
		}
		m.win = newWindowRing(epochs)
		if err := st.apply(m); err != nil {
			return nil, err
		}
		ring.install(m)
		capHint := m.bufferCap
		if len(st.log) > capHint {
			capHint = len(st.log)
		}
		m.buffer = make([]sparse.Entry, 0, capHint)
		m.buffer = append(m.buffer, st.log...)
		return m, nil
	case windowedModeSharded:
		shardCount, err := dec.SliceLen()
		if err != nil {
			return nil, err
		}
		if shardCount < 1 {
			return nil, fmt.Errorf("stream: windowed checkpoint with %d shards", shardCount)
		}
		states := make([]maintainerState, shardCount)
		rings := make([]*capturedRing, shardCount)
		for i := range states {
			if states[i], err = decodeState(dec, n); err != nil {
				return nil, err
			}
			if rings[i], err = decodeRing(dec, n, epochs); err != nil {
				return nil, fmt.Errorf("stream: shard %d: %w", i, err)
			}
		}
		s, err := NewWindowedSharded(n, k, epochs, shardCount, bufferCap, opts)
		if err != nil {
			return nil, err
		}
		for i, sh := range s.shards {
			st := &states[i]
			if err := st.apply(sh.m); err != nil {
				return nil, fmt.Errorf("stream: shard %d: %w", i, err)
			}
			rings[i].install(sh.m)
			sh.updates = st.updates
			if len(st.log) > cap(sh.active) {
				sh.active = make([]sparse.Entry, 0, len(st.log))
			}
			sh.active = append(sh.active[:0], st.log...)
		}
		return s, nil
	default:
		return nil, fmt.Errorf("stream: bad windowed checkpoint mode %d", mode)
	}
}
