package synopsis

import (
	"fmt"

	"repro/internal/parallel"
)

// rangeBatcher is the optional fast path a synopsis can provide for bulk
// serving: answer all ranges [as[i], bs[i]] with one validated pass, writing
// into out (grown if too small, reused otherwise). Implementations must
// return per-query results bit-identical to calling EstimateRange query by
// query, for every workers setting.
type rangeBatcher interface {
	estimateRangeBatch(as, bs []int, out []float64, workers int) ([]float64, error)
}

// EstimateRangeBatch answers the ranges [as[i], bs[i]] in bulk: one index,
// sorted-query locality on the histogram path, and fan-out across workers
// goroutines. The workers knob follows the Options.Workers convention on
// EVERY path, native or fallback: any value ≤ 0 means all cores
// (GOMAXPROCS), 1 forces the serial loop, any other positive value is used
// as given; batches below the parallel grain run serially regardless, as a
// pure performance heuristic. Every element of the result is bit-identical
// to the corresponding single EstimateRange call for every workers setting,
// so batching is purely a throughput lever. Synopses without a native bulk
// path are validated up front (invalid queries are reported by their batch
// index, lowest first) and served by a query loop fanned out under the same
// contract.
func EstimateRangeBatch(s Synopsis, as, bs []int, workers int) ([]float64, error) {
	return EstimateRangeBatchInto(s, as, bs, nil, workers)
}

// EstimateRangeBatchInto is EstimateRangeBatch writing results into out
// (grown if shorter than the batch, reused otherwise) — the allocation-free
// entry point for serving loops that recycle response buffers. Passing nil
// out is exactly EstimateRangeBatch.
func EstimateRangeBatchInto(s Synopsis, as, bs []int, out []float64, workers int) ([]float64, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("synopsis: batch shape mismatch: %d starts, %d ends", len(as), len(bs))
	}
	if rb, ok := s.(rangeBatcher); ok {
		return rb.estimateRangeBatch(as, bs, out, workers)
	}
	if err := checkRanges(as, bs, s.N()); err != nil {
		return nil, err
	}
	out = growFloats(out, len(as))
	w := parallel.Resolve(workers)
	if len(as) < parallel.MinGrain {
		w = 1
	}
	if w <= 1 {
		for i := range as {
			est, err := s.EstimateRange(as[i], bs[i])
			if err != nil {
				return nil, err
			}
			out[i] = est
		}
		return out, nil
	}
	// Ranges are pre-validated, but a custom Synopsis may still error for its
	// own reasons: each chunk records at most one error and the first in
	// chunk order wins, so the reported error does not depend on scheduling.
	errs := make([]error, parallel.NumChunks(len(as), w))
	parallel.ForChunks(w, len(as), w, func(ci, lo, hi int) {
		for i := lo; i < hi; i++ {
			est, err := s.EstimateRange(as[i], bs[i])
			if err != nil {
				errs[ci] = fmt.Errorf("batch query %d: %w", i, err)
				return
			}
			out[i] = est
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkRanges validates every query up front so the panic-on-invalid core
// batch kernels only ever see clean input.
func checkRanges(as, bs []int, n int) error {
	for i := range as {
		if err := checkRange(as[i], bs[i], n); err != nil {
			return fmt.Errorf("batch query %d: %w", i, err)
		}
	}
	return nil
}

// growFloats returns out resized to n, reallocating only when the capacity
// is short — the shared reuse contract of the batch entry points.
func growFloats(out []float64, n int) []float64 {
	if cap(out) < n {
		return make([]float64, n)
	}
	return out[:n]
}

func (s histogramSynopsis) estimateRangeBatch(as, bs []int, out []float64, workers int) ([]float64, error) {
	if err := checkRanges(as, bs, s.h.N()); err != nil {
		return nil, err
	}
	return s.h.RangeSumBatch(as, bs, out, workers), nil
}

// estimateRangeBatch serves the wavelet estimator's prefix path in bulk:
// each query is two O(1) prefix lookups, so the batch only amortizes
// validation and fans the loop out across workers.
func (s waveletSynopsis) estimateRangeBatch(as, bs []int, out []float64, workers int) ([]float64, error) {
	n := s.pre.N()
	if err := checkRanges(as, bs, n); err != nil {
		return nil, err
	}
	out = growFloats(out, len(as))
	w := parallel.Resolve(workers)
	if len(as) < parallel.MinGrain {
		w = 1
	}
	parallel.ForChunks(w, len(as), w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = s.pre.Sum(as[i], bs[i])
		}
	})
	return out, nil
}
