package synopsis

import (
	"fmt"

	"repro/internal/parallel"
)

// rangeBatcher is the optional fast path a synopsis can provide for bulk
// serving: answer all ranges [as[i], bs[i]] with one validated pass.
// Implementations must return per-query results bit-identical to calling
// EstimateRange query by query, for every workers setting.
type rangeBatcher interface {
	estimateRangeBatch(as, bs []int, workers int) ([]float64, error)
}

// EstimateRangeBatch answers the ranges [as[i], bs[i]] in bulk: one index,
// sorted-query locality on the histogram path, and optional fan-out across
// workers goroutines (0 = all cores, 1 = serial — the same convention as
// Options.Workers). Every element of the result is bit-identical to the
// corresponding single EstimateRange call, so batching is purely a
// throughput lever. Synopses without a native bulk path fall back to a
// serial query loop.
func EstimateRangeBatch(s Synopsis, as, bs []int, workers int) ([]float64, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("synopsis: batch shape mismatch: %d starts, %d ends", len(as), len(bs))
	}
	if rb, ok := s.(rangeBatcher); ok {
		return rb.estimateRangeBatch(as, bs, workers)
	}
	out := make([]float64, len(as))
	for i := range as {
		est, err := s.EstimateRange(as[i], bs[i])
		if err != nil {
			return nil, err
		}
		out[i] = est
	}
	return out, nil
}

// checkRanges validates every query up front so the panic-on-invalid core
// batch kernels only ever see clean input.
func checkRanges(as, bs []int, n int) error {
	for i := range as {
		if err := checkRange(as[i], bs[i], n); err != nil {
			return fmt.Errorf("batch query %d: %w", i, err)
		}
	}
	return nil
}

func (s histogramSynopsis) estimateRangeBatch(as, bs []int, workers int) ([]float64, error) {
	if err := checkRanges(as, bs, s.h.N()); err != nil {
		return nil, err
	}
	return s.h.RangeSumBatch(as, bs, nil, workers), nil
}

// estimateRangeBatch serves the wavelet estimator's prefix path in bulk:
// each query is two O(1) prefix lookups, so the batch only amortizes
// validation and fans the loop out across workers.
func (s waveletSynopsis) estimateRangeBatch(as, bs []int, workers int) ([]float64, error) {
	n := s.pre.N()
	if err := checkRanges(as, bs, n); err != nil {
		return nil, err
	}
	out := make([]float64, len(as))
	w := parallel.Resolve(workers)
	if len(as) < parallel.MinGrain {
		w = 1
	}
	parallel.ForChunks(w, len(as), w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = s.pre.Sum(as[i], bs[i])
		}
	})
	return out, nil
}
