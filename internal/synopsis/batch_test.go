package synopsis

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// opaque hides a synopsis's native batch path, forcing EstimateRangeBatch
// onto the fallback loop — the stand-in for third-party Synopsis
// implementations.
type opaque struct {
	s Synopsis
}

func (o opaque) EstimateRange(a, b int) (float64, error) { return o.s.EstimateRange(a, b) }
func (o opaque) Pieces() int                             { return o.s.Pieces() }
func (o opaque) N() int                                  { return o.s.N() }

// flaky errors on one specific query — exercising error propagation out of
// the fallback's parallel chunks.
type flaky struct {
	opaque
	badA int
}

func (f flaky) EstimateRange(a, b int) (float64, error) {
	if a == f.badA {
		return 0, fmt.Errorf("synthetic failure at %d", a)
	}
	return f.opaque.EstimateRange(a, b)
}

// TestEstimateRangeBatchWorkersContract is the regression test for the
// unified workers convention: EVERY batch entry point — native histogram
// and wavelet paths and the fallback loop — must treat workers ≤ 0 as all
// cores and produce results bit-identical to the serial single-query loop
// for every workers value. Before the fix the fallback ignored workers
// entirely, so a synopsis without a native batch path silently served
// workers = 0 requests on one goroutine.
func TestEstimateRangeBatchWorkersContract(t *testing.T) {
	const n = 6000
	freq := make([]float64, n)
	state := uint64(17)
	for i := range freq {
		state = state*6364136223846793005 + 1442695040888963407
		freq[i] = float64(state >> 40)
	}
	vopt, err := VOptimal(freq, 20)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := Wavelet(freq, 32)
	if err != nil {
		t.Fatal(err)
	}

	// A batch comfortably above the parallel grain, so workers ≠ 1 really
	// takes the fan-out path.
	count := parallel.MinGrain + 500
	as := make([]int, count)
	bs := make([]int, count)
	for i := 0; i < count; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		a := 1 + int(state>>33)%n
		as[i] = a
		bs[i] = a + int(state>>3)%(n-a+1)
	}

	for label, syn := range map[string]Synopsis{
		"native-histogram": vopt,
		"native-wavelet":   wave,
		"fallback":         opaque{s: vopt},
	} {
		want := make([]float64, count)
		for i := range as {
			if want[i], err = syn.EstimateRange(as[i], bs[i]); err != nil {
				t.Fatal(err)
			}
		}
		for _, workers := range []int{-3, 0, 1, 2, 8} {
			got, err := EstimateRangeBatch(syn, as, bs, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", label, workers, err)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s workers=%d: batch[%d] = %v, single = %v",
						label, workers, i, got[i], want[i])
				}
			}
		}
	}

	// Invalid queries are pre-validated on the fallback path and reported by
	// the LOWEST failing index for every workers value — not whichever chunk
	// a scheduler ran first.
	badAs := append([]int(nil), as...)
	badBs := append([]int(nil), bs...)
	badAs[40], badBs[40] = 5, 2     // inverted
	badAs[2000], badBs[2000] = 0, 1 // below domain
	for _, workers := range []int{-1, 0, 1, 4} {
		_, err := EstimateRangeBatch(opaque{s: vopt}, badAs, badBs, workers)
		if err == nil {
			t.Fatalf("workers=%d: invalid batch accepted", workers)
		}
		if !strings.Contains(err.Error(), "batch query 40") {
			t.Fatalf("workers=%d: error %q does not name the lowest bad query", workers, err)
		}
	}

	// A custom synopsis failing mid-batch must surface its error from the
	// parallel chunks too, never a partial result.
	f := flaky{opaque: opaque{s: vopt}, badA: as[100]}
	for _, workers := range []int{0, 1, 3} {
		if _, err := EstimateRangeBatch(f, as, bs, workers); err == nil {
			t.Fatalf("workers=%d: mid-batch failure swallowed", workers)
		}
	}
}
