package synopsis

import (
	"fmt"
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/wavelet"
)

// Estimator kinds on the wire: every Synopsis implementation in this package
// is either histogram-backed (VOptimal, EquiWidth, EquiDepth — one shape
// once built) or wavelet-backed. Values are part of the format: never
// renumber.
const (
	estHistogram byte = 0
	estWavelet   byte = 1
)

// EncodeEstimatorPayload writes a range estimator's stored state: a kind
// byte, then the histogram payload or the wavelet-coefficient payload. The
// wavelet estimator's prefix-sum table is derived state and is rebuilt on
// decode, so the wire cost stays O(pieces), never O(n).
func EncodeEstimatorPayload(w *codec.Writer, s Synopsis) error {
	switch est := s.(type) {
	case histogramSynopsis:
		w.Byte(estHistogram)
		core.EncodeHistogramPayload(w, est.h)
		return nil
	case waveletSynopsis:
		w.Byte(estWavelet)
		wavelet.EncodePayload(w, est.ws)
		return nil
	default:
		return fmt.Errorf("synopsis: unencodable estimator type %T", s)
	}
}

// DecodeEstimatorPayload reads and validates an estimator payload,
// rebuilding derived serving state (the wavelet reconstruction's prefix
// sums) with the same code path that built the original — restored
// estimators answer every EstimateRange bit-identically.
func DecodeEstimatorPayload(r *codec.Reader) (Synopsis, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch kind {
	case estHistogram:
		h, err := core.DecodeHistogramPayload(r)
		if err != nil {
			return nil, err
		}
		return histogramSynopsis{h: h}, nil
	case estWavelet:
		ws, err := wavelet.DecodePayload(r)
		if err != nil {
			return nil, err
		}
		s, err := fromSynopsis(ws)
		if err != nil {
			return nil, err
		}
		return s, nil
	default:
		return nil, fmt.Errorf("synopsis: unknown estimator kind %d", kind)
	}
}

// EncodeEstimator writes one estimator envelope (see internal/codec) to w.
func EncodeEstimator(w io.Writer, s Synopsis) error {
	enc := codec.NewWriter(w, codec.TagEstimator)
	if err := EncodeEstimatorPayload(enc, s); err != nil {
		return err
	}
	return enc.Close()
}

// DecodeEstimator reads one estimator envelope from r.
func DecodeEstimator(r io.Reader) (Synopsis, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return nil, err
	}
	if tag != codec.TagEstimator {
		return nil, fmt.Errorf("synopsis: envelope holds type tag %d, not an estimator", tag)
	}
	s, err := DecodeEstimatorPayload(dec)
	if err != nil {
		return nil, err
	}
	if err := dec.Close(); err != nil {
		return nil, err
	}
	return s, nil
}
