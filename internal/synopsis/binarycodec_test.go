package synopsis

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestEstimatorBinaryRoundTrip(t *testing.T) {
	r := rng.New(4242)
	values := make([]int, 20000)
	for i := range values {
		v := int(math.Abs(r.NormFloat64())*150) + 1
		if v > 1000 {
			v = 1000
		}
		values[i] = v
	}
	freq, err := Frequencies(values, 1000)
	if err != nil {
		t.Fatal(err)
	}
	builders := map[string]func() (Synopsis, error){
		"voptimal":  func() (Synopsis, error) { return VOptimal(freq, 12) },
		"equiwidth": func() (Synopsis, error) { return EquiWidth(freq, 24) },
		"equidepth": func() (Synopsis, error) { return EquiDepth(freq, 24) },
		"wavelet":   func() (Synopsis, error) { return Wavelet(freq, 48) },
	}
	for name, build := range builders {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		var buf bytes.Buffer
		if err := EncodeEstimator(&buf, s); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		blob := append([]byte{}, buf.Bytes()...)
		back, err := DecodeEstimator(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		buf.Reset()
		if err := EncodeEstimator(&buf, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, buf.Bytes()) {
			t.Fatalf("%s: re-encoded bytes differ", name)
		}
		if back.Pieces() != s.Pieces() || back.N() != s.N() {
			t.Fatalf("%s: shape differs: pieces %d vs %d, n %d vs %d",
				name, back.Pieces(), s.Pieces(), back.N(), s.N())
		}
		// Every range estimate must be bit-identical.
		for a := 1; a <= 1000; a += 73 {
			for b := a; b <= 1000; b += 131 {
				want, err1 := s.EstimateRange(a, b)
				got, err2 := back.EstimateRange(a, b)
				if err1 != nil || err2 != nil || math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("%s: EstimateRange(%d, %d) = %v (%v), want %v (%v)",
						name, a, b, got, err2, want, err1)
				}
			}
		}
	}
}
