package synopsis

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/rng"
)

// queryTestFreq builds a deterministic skewed frequency vector with enough
// structure that a k-piece synopsis has k distinct buckets.
func queryTestFreq(n, steps int) []float64 {
	r := rng.New(uint64(n)*31 + uint64(steps))
	freq := make([]float64, n)
	level := 5.0
	stepLen := n/steps + 1
	for i := range freq {
		if i%stepLen == 0 {
			level = math.Abs(r.NormFloat64()) * 50
		}
		freq[i] = math.Floor(level + 3*r.Float64())
	}
	return freq
}

// buildSynopses returns every synopsis construction on the same vector, by
// name, so query properties are checked uniformly across estimators.
func buildSynopses(t *testing.T, freq []float64, k int) map[string]Synopsis {
	t.Helper()
	vopt, err := VOptimal(freq, k)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := EquiWidth(freq, k)
	if err != nil {
		t.Fatal(err)
	}
	ed, err := EquiDepth(freq, k)
	if err != nil {
		t.Fatal(err)
	}
	wav, err := Wavelet(freq, 2*k)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Synopsis{"voptimal": vopt, "equiwidth": ew, "equidepth": ed, "wavelet": wav}
}

func testQuerySet(r *rng.RNG, n, count int) (as, bs []int) {
	as = make([]int, 0, count+3)
	bs = make([]int, 0, count+3)
	add := func(a, b int) { as = append(as, a); bs = append(bs, b) }
	add(1, n)
	add(1, 1)
	add(n, n)
	for i := 0; i < count; i++ {
		a := 1 + r.Intn(n)
		add(a, a+r.Intn(n-a+1))
	}
	return as, bs
}

func TestEstimateRangeMatchesLinearOracle(t *testing.T) {
	// The indexed EstimateRange must agree with the retained pre-index
	// linear scan on every histogram synopsis: bit-identical for ranges
	// inside one bucket, and up to accumulation-order rounding (scaled by
	// total mass) across buckets.
	freq := queryTestFreq(5000, 40)
	var mass float64
	for _, f := range freq {
		mass += f
	}
	r := rng.New(101)
	for name, s := range buildSynopses(t, freq, 16) {
		hs, ok := s.(histogramSynopsis)
		if !ok {
			continue // the wavelet estimator has no linear piece scan
		}
		as, bs := testQuerySet(r, s.N(), 400)
		for i := range as {
			got, err := s.EstimateRange(as[i], bs[i])
			if err != nil {
				t.Fatal(err)
			}
			want, err := hs.estimateRangeLinear(as[i], bs[i])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12*(1+mass) {
				t.Fatalf("%s: EstimateRange(%d, %d) = %v, linear oracle %v",
					name, as[i], bs[i], got, want)
			}
			// Within a single bucket both paths compute the identical
			// product, so the agreement must be exact.
			if hs.h.PieceIndex(as[i]) == hs.h.PieceIndex(bs[i]) && got != want {
				t.Fatalf("%s: single-bucket EstimateRange(%d, %d) = %v not bit-identical to %v",
					name, as[i], bs[i], got, want)
			}
		}
	}
}

func TestEstimateRangeBatchBitIdenticalAcrossWorkers(t *testing.T) {
	freq := queryTestFreq(3000, 25)
	r := rng.New(103)
	for name, s := range buildSynopses(t, freq, 12) {
		as, bs := testQuerySet(r, s.N(), 2500)
		want := make([]float64, len(as))
		for i := range as {
			est, err := s.EstimateRange(as[i], bs[i])
			if err != nil {
				t.Fatal(err)
			}
			want[i] = est
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := EstimateRangeBatch(s, as, bs, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: batch[%d] = %v, single = %v",
						name, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestEstimateRangeBatchValidation(t *testing.T) {
	freq := queryTestFreq(100, 5)
	for name, s := range buildSynopses(t, freq, 4) {
		if _, err := EstimateRangeBatch(s, []int{1, 2}, []int{3}, 1); err == nil {
			t.Fatalf("%s: shape mismatch should error", name)
		}
		if _, err := EstimateRangeBatch(s, []int{0}, []int{3}, 1); err == nil {
			t.Fatalf("%s: out-of-domain batch query should error", name)
		}
		if _, err := EstimateRangeBatch(s, []int{5}, []int{4}, 1); err == nil {
			t.Fatalf("%s: reversed batch query should error", name)
		}
		out, err := EstimateRangeBatch(s, nil, nil, 1)
		if err != nil || len(out) != 0 {
			t.Fatalf("%s: empty batch should succeed, got %v, %v", name, out, err)
		}
	}
}

func TestEstimateRangeSteadyStateAllocs(t *testing.T) {
	// The acceptance bar for the serving path: zero allocations per query
	// once the index is warm, through the Synopsis interface.
	freq := queryTestFreq(20000, 60)
	var sink float64
	for name, s := range buildSynopses(t, freq, 32) {
		if _, err := s.EstimateRange(1, s.N()); err != nil { // warm the index
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			est, err := s.EstimateRange(17, 19555)
			if err != nil {
				t.Fatal(err)
			}
			sink += est
		}); allocs != 0 {
			t.Fatalf("%s: EstimateRange allocates %v/op at steady state, want 0", name, allocs)
		}
	}
	_ = sink
}

// TestRangeQueryAsymptotics is the satellite check that the package doc's
// O(log pieces) claim is now real: at k = 1000 the indexed EstimateRange
// must beat the retained O(pieces) linear scan by a wide margin. The true
// ratio is ~two orders of magnitude; the 3× assertion bar leaves headroom
// for CI noise. Set REPRO_SKIP_TIMING=1 to skip on wildly loaded machines.
func TestRangeQueryAsymptotics(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if os.Getenv("REPRO_SKIP_TIMING") != "" {
		t.Skip("REPRO_SKIP_TIMING set")
	}
	freq := queryTestFreq(100000, 4000)
	s, err := VOptimal(freq, 1000)
	if err != nil {
		t.Fatal(err)
	}
	hs := s.(histogramSynopsis)
	k := s.Pieces()
	if k < 1000 {
		t.Fatalf("fixture too small: %d pieces", k)
	}
	r := rng.New(107)
	as, bs := testQuerySet(r, s.N(), 512)
	if _, err := s.EstimateRange(1, s.N()); err != nil {
		t.Fatal(err)
	}
	indexed := testing.Benchmark(func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			q := i % len(as)
			est, _ := s.EstimateRange(as[q], bs[q])
			acc += est
		}
		_ = acc
	})
	linear := testing.Benchmark(func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			q := i % len(as)
			est, _ := hs.estimateRangeLinear(as[q], bs[q])
			acc += est
		}
		_ = acc
	})
	ratio := float64(linear.NsPerOp()) / float64(indexed.NsPerOp())
	t.Logf("k = %d: indexed %d ns/op, linear %d ns/op, ratio %.1fx",
		k, indexed.NsPerOp(), linear.NsPerOp(), ratio)
	if ratio < 3 {
		t.Fatalf("indexed EstimateRange only %.2fx faster than the linear scan at k = %d; "+
			"the O(log pieces) documentation claim is not being delivered", ratio, k)
	}
}

func BenchmarkEstimateRange(b *testing.B) {
	for _, k := range []int{10, 100, 1000} {
		freq := queryTestFreq(100000, 4*k)
		s, err := VOptimal(freq, k)
		if err != nil {
			b.Fatal(err)
		}
		hs := s.(histogramSynopsis)
		r := rng.New(109)
		as, bs := testQuerySet(r, s.N(), 512)
		if _, err := s.EstimateRange(1, s.N()); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("indexed/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				q := i % len(as)
				est, _ := s.EstimateRange(as[q], bs[q])
				acc += est
			}
			_ = acc
		})
		b.Run(fmt.Sprintf("linear/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var acc float64
			for i := 0; i < b.N; i++ {
				q := i % len(as)
				est, _ := hs.estimateRangeLinear(as[q], bs[q])
				acc += est
			}
			_ = acc
		})
	}
}
