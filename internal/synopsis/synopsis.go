// Package synopsis applies the histogram algorithms to the database task
// that motivates them (Section 1): compact synopses of a column's value
// distribution for range-count / selectivity estimation.
//
// A synopsis is built once from the column's frequency vector and then
// answers "how many rows have value in [a, b]?" in O(log pieces) time from
// O(k) numbers — point-located on the histogram's query index (two binary
// searches plus O(1) prefix-mass arithmetic; see internal/core/index.go),
// not by scanning the pieces. Batched workloads go through
// EstimateRangeBatch, which answers a slice of queries with one index,
// sorted-query locality, and optional multi-core fan-out. Three
// constructions are provided:
//
//   - VOptimal: the paper's merging algorithm (near-V-optimal piece
//     placement, construction O(n) — the contribution being showcased);
//   - EquiWidth: k fixed-width buckets (the classical default);
//   - EquiDepth: k equal-mass buckets (quantile histogram).
//
// All three implement the same Synopsis interface so estimation quality can
// be compared per query.
package synopsis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/numeric"
	"repro/internal/sparse"
)

// Synopsis answers approximate range-count queries over a column whose
// values lie in [1, n].
type Synopsis interface {
	// EstimateRange returns an estimate of the number of rows with value in
	// [a, b] (1-based, inclusive).
	EstimateRange(a, b int) (float64, error)
	// Pieces returns the space used, in buckets.
	Pieces() int
	// N returns the value-domain size.
	N() int
}

// Frequencies converts raw column values (each in [1, n]) to the frequency
// vector the estimators are built from.
func Frequencies(values []int, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("synopsis: domain size %d < 1", n)
	}
	f := make([]float64, n)
	for _, v := range values {
		if v < 1 || v > n {
			return nil, fmt.Errorf("synopsis: value %d out of [1, %d]", v, n)
		}
		f[v-1]++
	}
	return f, nil
}

// Exact answers range counts exactly from the full frequency vector — the
// accuracy oracle the synopses are measured against.
type Exact struct {
	pre *numeric.PrefixSSE
}

// NewExact builds the exact counter in O(n).
func NewExact(freq []float64) *Exact {
	return &Exact{pre: numeric.NewPrefixSSE(freq)}
}

// CountRange returns the exact number of rows with value in [a, b].
func (e *Exact) CountRange(a, b int) (float64, error) {
	if err := checkRange(a, b, e.pre.N()); err != nil {
		return 0, err
	}
	return e.pre.Sum(a, b), nil
}

// N returns the domain size.
func (e *Exact) N() int { return e.pre.N() }

func checkRange(a, b, n int) error {
	if a < 1 || b > n || a > b {
		return fmt.Errorf("synopsis: range [%d, %d] invalid for domain [1, %d]", a, b, n)
	}
	return nil
}

// histogramSynopsis answers range queries from any piecewise-constant
// summary, assuming uniform spread within each bucket (the standard
// histogram estimation assumption).
type histogramSynopsis struct {
	h *core.Histogram
}

// EstimateRange answers in O(log pieces) and zero allocations at steady
// state via the histogram's query index.
func (s histogramSynopsis) EstimateRange(a, b int) (float64, error) {
	if err := checkRange(a, b, s.h.N()); err != nil {
		return 0, err
	}
	return s.h.RangeSum(a, b), nil
}

// estimateRangeLinear is the pre-index O(pieces) scan (core.RangeSumScan),
// kept as the reference oracle the indexed path is property-tested against
// (mathematically equal; the accumulation order differs, so the comparison
// is up to float rounding — the bit-identity oracle for the indexed
// semantics is core's linear replay in the query tests).
func (s histogramSynopsis) estimateRangeLinear(a, b int) (float64, error) {
	if err := checkRange(a, b, s.h.N()); err != nil {
		return 0, err
	}
	return s.h.RangeSumScan(a, b), nil
}

func (s histogramSynopsis) Pieces() int { return s.h.NumPieces() }
func (s histogramSynopsis) N() int      { return s.h.N() }

// Histogram exposes the underlying histogram (for inspection and plotting).
func (s histogramSynopsis) Histogram() *core.Histogram { return s.h }

// VOptimal builds a near-V-optimal synopsis with roughly 2k+1 buckets using
// the paper's merging algorithm with its experimental parameters. The
// V-optimal criterion minimizes the ℓ2 error of the frequency approximation,
// which bounds the error of range-count estimates.
func VOptimal(freq []float64, k int) (Synopsis, error) {
	sf := sparse.FromDense(freq)
	res, err := core.ConstructHistogram(sf, k, core.PaperOptions())
	if err != nil {
		return nil, err
	}
	return histogramSynopsis{h: res.Histogram}, nil
}

// EquiWidth builds the classical k-bucket fixed-width synopsis.
func EquiWidth(freq []float64, k int) (Synopsis, error) {
	n := len(freq)
	if n == 0 {
		return nil, fmt.Errorf("synopsis: empty frequency vector")
	}
	if k < 1 {
		return nil, fmt.Errorf("synopsis: k must be ≥ 1, got %d", k)
	}
	if k > n {
		k = n
	}
	part := interval.Uniform(n, k)
	sf := sparse.FromDense(freq)
	return histogramSynopsis{h: core.FlattenHistogram(sf, part)}, nil
}

// EquiDepth builds a k-bucket equal-mass (quantile) synopsis: bucket
// boundaries are chosen so each bucket holds ≈ 1/k of the total count.
func EquiDepth(freq []float64, k int) (Synopsis, error) {
	n := len(freq)
	if n == 0 {
		return nil, fmt.Errorf("synopsis: empty frequency vector")
	}
	if k < 1 {
		return nil, fmt.Errorf("synopsis: k must be ≥ 1, got %d", k)
	}
	if k > n {
		k = n
	}
	pre := numeric.NewPrefixSSE(freq)
	total := pre.Sum(1, n)
	if total <= 0 {
		return nil, fmt.Errorf("synopsis: empty column")
	}
	// cum[i] = count of values ≤ i+1; strictly for the searches below we use
	// pre.Sum(1, i).
	ends := make([]int, 0, k)
	lo := 1
	for b := 1; b < k; b++ {
		targetMass := total * float64(b) / float64(k)
		// Smallest i with cumulative mass ≥ target.
		i := sort.Search(n, func(j int) bool {
			return pre.Sum(1, j+1) >= targetMass
		}) + 1
		if i <= lo-1 {
			i = lo
		}
		if i >= n {
			break
		}
		if len(ends) > 0 && i <= ends[len(ends)-1] {
			continue // duplicate quantile — skewed data
		}
		ends = append(ends, i)
		lo = i + 1
	}
	ends = append(ends, n)
	part, err := interval.FromBoundaries(n, ends)
	if err != nil {
		return nil, fmt.Errorf("synopsis: equi-depth boundaries: %w", err)
	}
	sf := sparse.FromDense(freq)
	return histogramSynopsis{h: core.FlattenHistogram(sf, part)}, nil
}

// MaxRangeError measures the worst absolute range-count error of a synopsis
// over all O(q²) ranges with endpoints on a grid of q probe points — a
// tractable proxy for the exact worst case.
func MaxRangeError(s Synopsis, exact *Exact, probes int) (float64, error) {
	n := s.N()
	if n != exact.N() {
		return 0, fmt.Errorf("synopsis: domain mismatch %d vs %d", n, exact.N())
	}
	if probes < 2 {
		probes = 2
	}
	grid := make([]int, 0, probes)
	for i := 0; i < probes; i++ {
		g := 1 + i*(n-1)/(probes-1)
		if len(grid) == 0 || g > grid[len(grid)-1] {
			grid = append(grid, g)
		}
	}
	var worst float64
	for i, a := range grid {
		for _, b := range grid[i:] {
			est, err := s.EstimateRange(a, b)
			if err != nil {
				return 0, err
			}
			truth, err := exact.CountRange(a, b)
			if err != nil {
				return 0, err
			}
			if d := math.Abs(est - truth); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}
