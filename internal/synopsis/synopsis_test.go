package synopsis

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
)

// zipfColumn generates a skewed column: frequencies ∝ 1/rank over a shuffled
// domain, the classic worst case for equi-width histograms.
func zipfColumn(r *rng.RNG, n, rows int) []int {
	weights := make([]float64, n)
	perm := r.Perm(n)
	var total float64
	for i := range weights {
		weights[i] = 1 / float64(perm[i]+1)
		total += weights[i]
	}
	// Sample rows from the weights by inverse CDF.
	cdf := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	out := make([]int, rows)
	for i := range out {
		u := r.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		out[i] = lo + 1
	}
	return out
}

func TestFrequencies(t *testing.T) {
	f, err := Frequencies([]int{1, 1, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 1, 0}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("f = %v", f)
		}
	}
	if _, err := Frequencies([]int{5}, 4); err == nil {
		t.Fatal("out-of-domain value should error")
	}
	if _, err := Frequencies(nil, 0); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestExactCount(t *testing.T) {
	e := NewExact([]float64{1, 2, 3, 4})
	got, err := e.CountRange(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("CountRange = %v", got)
	}
	if _, err := e.CountRange(0, 2); err == nil {
		t.Fatal("invalid range should error")
	}
	if _, err := e.CountRange(3, 2); err == nil {
		t.Fatal("inverted range should error")
	}
}

func TestVOptimalExactOnStepColumn(t *testing.T) {
	// A column whose frequency vector is a k-step function is represented
	// exactly, so every range estimate is exact too.
	freq := make([]float64, 100)
	for i := range freq {
		switch {
		case i < 30:
			freq[i] = 5
		case i < 70:
			freq[i] = 1
		default:
			freq[i] = 8
		}
	}
	s, err := VOptimal(freq, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExact(freq)
	for _, c := range [][2]int{{1, 100}, {1, 30}, {31, 70}, {15, 85}, {50, 50}} {
		est, err := s.EstimateRange(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := e.CountRange(c[0], c[1])
		if math.Abs(est-truth) > 1e-9 {
			t.Fatalf("range %v: est %v, truth %v", c, est, truth)
		}
	}
}

func TestWholeDomainQueryIsExactForAll(t *testing.T) {
	// Every mass-preserving synopsis answers the full-domain count exactly.
	r := rng.New(211)
	values := zipfColumn(r, 200, 5000)
	freq, err := Frequencies(values, 200)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExact(freq)
	truth, _ := e.CountRange(1, 200)
	for name, build := range map[string]func([]float64, int) (Synopsis, error){
		"voptimal": VOptimal, "equiwidth": EquiWidth, "equidepth": EquiDepth,
	} {
		s, err := build(freq, 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		est, err := s.EstimateRange(1, 200)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est-truth) > 1e-6 {
			t.Fatalf("%s: whole-domain estimate %v ≠ %v", name, est, truth)
		}
	}
}

func TestEquiWidthBucketCount(t *testing.T) {
	freq := make([]float64, 97)
	s, err := EquiWidth(freq[:], 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pieces() != 10 {
		t.Fatalf("pieces = %d", s.Pieces())
	}
	if s.N() != 97 {
		t.Fatalf("N = %d", s.N())
	}
}

func TestEquiDepthBalancesMass(t *testing.T) {
	r := rng.New(223)
	values := zipfColumn(r, 500, 20000)
	freq, err := Frequencies(values, 500)
	if err != nil {
		t.Fatal(err)
	}
	s, err := EquiDepth(freq, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pieces() > 10 {
		t.Fatalf("pieces = %d > 10", s.Pieces())
	}
	// Each bucket holds at most ~3× the fair share on this data (skew can
	// prevent perfect balance when single values are heavy).
	hs, ok := s.(interface{ Histogram() *core.Histogram })
	if !ok {
		t.Fatal("equi-depth synopsis should expose its histogram")
	}
	e := NewExact(freq)
	total, _ := e.CountRange(1, 500)
	fair := total / float64(s.Pieces())
	for _, pc := range hs.Histogram().Pieces() {
		mass, err := e.CountRange(pc.Lo, pc.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if mass > 3*fair {
			t.Fatalf("bucket %v holds %v, fair share %v", pc.Interval, mass, fair)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	freq := []float64{1, 2, 3}
	if _, err := EquiWidth(nil, 2); err == nil {
		t.Fatal("empty freq should error")
	}
	if _, err := EquiWidth(freq, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := EquiDepth(nil, 2); err == nil {
		t.Fatal("empty freq should error")
	}
	if _, err := EquiDepth(freq, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := EquiDepth([]float64{0, 0}, 2); err == nil {
		t.Fatal("empty column should error")
	}
	s, err := VOptimal(freq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateRange(0, 2); err == nil {
		t.Fatal("bad range should error")
	}
}

func TestVOptimalBeatsEquiWidthOnSkewedData(t *testing.T) {
	// The motivating comparison: on a column with a few sharp frequency
	// steps, V-optimal bucket placement gives much better range estimates
	// than fixed-width buckets at equal space.
	freq := make([]float64, 1000)
	for i := range freq {
		switch {
		case i < 90:
			freq[i] = 1
		case i < 100:
			freq[i] = 500 // hot band not aligned with any equi-width boundary
		case i < 700:
			freq[i] = 2
		default:
			freq[i] = 40
		}
	}
	e := NewExact(freq)
	vo, err := VOptimal(freq, 5)
	if err != nil {
		t.Fatal(err)
	}
	ew, err := EquiWidth(freq, vo.Pieces()) // same space
	if err != nil {
		t.Fatal(err)
	}
	voErr, err := MaxRangeError(vo, e, 60)
	if err != nil {
		t.Fatal(err)
	}
	ewErr, err := MaxRangeError(ew, e, 60)
	if err != nil {
		t.Fatal(err)
	}
	if voErr >= ewErr {
		t.Fatalf("V-optimal worst error %v not better than equi-width %v", voErr, ewErr)
	}
}

func TestMaxRangeErrorDomainMismatch(t *testing.T) {
	s, err := VOptimal([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExact([]float64{1, 2})
	if _, err := MaxRangeError(s, e, 10); err == nil {
		t.Fatal("domain mismatch should error")
	}
}
