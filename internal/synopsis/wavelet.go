package synopsis

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/wavelet"
)

// waveletSynopsis adapts a B-term Haar synopsis to the Synopsis interface so
// it can be compared against the histogram estimators query-for-query. Range
// counts are answered from the reconstructed frequency vector's prefix sums.
// The stored state — what the binary codec persists — is the B coefficients;
// the prefix table is derived, rebuilt deterministically on load.
type waveletSynopsis struct {
	ws  *wavelet.Synopsis
	pre *numeric.PrefixSSE
}

// fromSynopsis derives the serving state (the reconstruction's prefix sums)
// from a wavelet synopsis — shared by the constructor and the decoder, so a
// restored estimator is built by exactly the code path that built the
// original.
func fromSynopsis(ws *wavelet.Synopsis) (waveletSynopsis, error) {
	rec, err := ws.Reconstruct()
	if err != nil {
		return waveletSynopsis{}, fmt.Errorf("synopsis: %w", err)
	}
	return waveletSynopsis{ws: ws, pre: numeric.NewPrefixSSE(rec)}, nil
}

// Wavelet builds a B-term Haar wavelet synopsis of the frequency vector with
// the same storage accounting as a histogram: b coefficients ≈ a histogram
// with b/2 pieces. It is the classical ℓ2 synopsis the related work compares
// against; on frequency vectors with non-dyadic discontinuities the
// V-optimal estimator wins at equal space (see TestWaveletVsVOptimal).
func Wavelet(freq []float64, b int) (Synopsis, error) {
	if len(freq) == 0 {
		return nil, fmt.Errorf("synopsis: empty frequency vector")
	}
	ws, err := wavelet.NewSynopsis(freq, b)
	if err != nil {
		return nil, fmt.Errorf("synopsis: %w", err)
	}
	s, err := fromSynopsis(ws)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// FromWavelet adapts an existing B-term wavelet synopsis (for example one
// decoded from a TagWavelet envelope) into a range estimator, rebuilding the
// derived prefix table by exactly the code path Wavelet uses — so an
// estimator built from a decoded synopsis answers every EstimateRange
// bit-identically to one built from the original frequency vector.
func FromWavelet(ws *wavelet.Synopsis) (Synopsis, error) {
	s, err := fromSynopsis(ws)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// EstimateRange implements Synopsis.
func (s waveletSynopsis) EstimateRange(a, b int) (float64, error) {
	if err := checkRange(a, b, s.pre.N()); err != nil {
		return 0, err
	}
	return s.pre.Sum(a, b), nil
}

// Pieces implements Synopsis: the stored coefficient count (comparable to
// 2× a histogram's piece count in numbers stored).
func (s waveletSynopsis) Pieces() int { return s.ws.B() }

// N implements Synopsis.
func (s waveletSynopsis) N() int { return s.pre.N() }
