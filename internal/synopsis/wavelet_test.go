package synopsis

import (
	"math"
	"testing"
)

func TestWaveletSynopsisValidation(t *testing.T) {
	if _, err := Wavelet(nil, 4); err == nil {
		t.Fatal("empty freq should error")
	}
	if _, err := Wavelet([]float64{1, 2}, 0); err == nil {
		t.Fatal("b=0 should error")
	}
}

func TestWaveletSynopsisWholeDomain(t *testing.T) {
	// The scaling coefficient is always among the top-B for non-negative
	// data with B ≥ 1... not guaranteed in general, but a full-B synopsis
	// answers every query exactly.
	freq := []float64{4, 4, 2, 2, 8, 8, 8, 8}
	s, err := Wavelet(freq, 8)
	if err != nil {
		t.Fatal(err)
	}
	e := NewExact(freq)
	for _, c := range [][2]int{{1, 8}, {1, 4}, {3, 6}, {5, 5}} {
		est, err := s.EstimateRange(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := e.CountRange(c[0], c[1])
		if math.Abs(est-truth) > 1e-9 {
			t.Fatalf("range %v: est %v truth %v", c, est, truth)
		}
	}
}

func TestWaveletSynopsisRangeValidation(t *testing.T) {
	s, err := Wavelet([]float64{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateRange(0, 2); err == nil {
		t.Fatal("bad range should error")
	}
	if s.N() != 4 || s.Pieces() != 2 {
		t.Fatalf("N=%d pieces=%d", s.N(), s.Pieces())
	}
}

func TestWaveletVsVOptimal(t *testing.T) {
	// Non-dyadic frequency steps: at equal stored numbers, the V-optimal
	// histogram places boundaries exactly on the jumps while the Haar
	// synopsis is locked to dyadic supports — the histogram's worst range
	// error should be (much) smaller.
	n := 1024
	freq := make([]float64, n)
	for i := range freq {
		switch {
		case i < 111: // non-dyadic jump positions
			freq[i] = 10
		case i < 613:
			freq[i] = 2
		default:
			freq[i] = 25
		}
	}
	vo, err := VOptimal(freq, 3) // 7 pieces → 14 numbers
	if err != nil {
		t.Fatal(err)
	}
	wv, err := Wavelet(freq, 2*vo.Pieces()) // same number budget
	if err != nil {
		t.Fatal(err)
	}
	e := NewExact(freq)
	voErr, err := MaxRangeError(vo, e, 64)
	if err != nil {
		t.Fatal(err)
	}
	wvErr, err := MaxRangeError(wv, e, 64)
	if err != nil {
		t.Fatal(err)
	}
	if voErr >= wvErr {
		t.Fatalf("v-optimal worst error %v not better than wavelet %v", voErr, wvErr)
	}
}
