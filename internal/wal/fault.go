// Fault injection for the WAL: FaultFS plugs into Options.OpenFile and
// hands out FaultFiles that model a page cache over a real on-disk image.
// Writes land in an in-memory cache; Sync flushes the cache to the backing
// file and fsyncs it. Crash* methods then simulate every failure mode the
// recovery path must survive — dropping the unsynced cache, persisting a
// torn prefix of it, or persisting a LATER range with a zeroed hole before
// it (the write-reordering case) — by materializing exactly those bytes in
// the real file, so wal.Open recovers from a directory that looks the way
// a crashed machine's disk would.
package wal

import (
	"fmt"
	"os"
	"sync"
)

// FaultFile is a File whose durable image diverges from what was written
// until Sync, with programmable write/fsync failures.
type FaultFile struct {
	mu   sync.Mutex
	disk *os.File
	// diskLen is the durable image length; cache holds written-but-unsynced
	// bytes that a crash may drop, tear, or reorder.
	diskLen int64
	cache   []byte

	// failWriteAt injects a write error once total written bytes would
	// reach it (<0 disabled); failSync makes every Sync fail.
	failWriteAt int64
	failSync    bool
	closed      bool
	crashed     bool
}

// FaultFS opens FaultFiles over real files and remembers them by path so a
// test can reach the one behind the log's active segment.
type FaultFS struct {
	mu    sync.Mutex
	files map[string]*FaultFile
	order []*FaultFile

	// NextFailWriteAt/NextFailSync arm the corresponding fault on files
	// opened after they are set.
	NextFailWriteAt int64
	NextFailSync    bool
}

// NewFaultFS returns a FaultFS with no faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: make(map[string]*FaultFile), NextFailWriteAt: -1}
}

// Open is an OpenFileFunc.
func (fs *FaultFS) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fs.mu.Lock()
	ff := &FaultFile{disk: f, diskLen: st.Size(), failWriteAt: fs.NextFailWriteAt, failSync: fs.NextFailSync}
	fs.files[path] = ff
	fs.order = append(fs.order, ff)
	fs.mu.Unlock()
	return ff, nil
}

// File returns the FaultFile opened for path, or nil.
func (fs *FaultFS) File(path string) *FaultFile {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.files[path]
}

// Last returns the most recently opened FaultFile, or nil.
func (fs *FaultFS) Last() *FaultFile {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if len(fs.order) == 0 {
		return nil
	}
	return fs.order[len(fs.order)-1]
}

func (f *FaultFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.crashed {
		return 0, fmt.Errorf("faultfile: write on closed file")
	}
	written := f.diskLen + int64(len(f.cache))
	if f.failWriteAt >= 0 && written+int64(len(p)) > f.failWriteAt {
		// Tear the write at the programmed offset: the prefix reaches the
		// cache (it may later persist), the rest is lost with an error.
		keep := f.failWriteAt - written
		if keep < 0 {
			keep = 0
		}
		f.cache = append(f.cache, p[:keep]...)
		return int(keep), fmt.Errorf("faultfile: injected write failure at offset %d", f.failWriteAt)
	}
	f.cache = append(f.cache, p...)
	return len(p), nil
}

func (f *FaultFile) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.crashed {
		return fmt.Errorf("faultfile: sync on closed file")
	}
	if f.failSync {
		return fmt.Errorf("faultfile: injected fsync failure")
	}
	return f.flushLocked()
}

func (f *FaultFile) flushLocked() error {
	if len(f.cache) > 0 {
		if _, err := f.disk.WriteAt(f.cache, f.diskLen); err != nil {
			return err
		}
		f.diskLen += int64(len(f.cache))
		f.cache = f.cache[:0]
	}
	return f.disk.Sync()
}

// Close flushes the cache (a clean close keeps page-cache data; only a
// crash loses it) and closes the backing file.
func (f *FaultFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil
	}
	if f.closed {
		return fmt.Errorf("faultfile: double close")
	}
	f.closed = true
	if err := f.flushLocked(); err != nil {
		f.disk.Close()
		return err
	}
	return f.disk.Close()
}

// SetFailWrite arms a write failure once total written bytes reach off
// (pass a negative off to disarm); SetFailSync arms fsync failure.
func (f *FaultFile) SetFailWrite(off int64) {
	f.mu.Lock()
	f.failWriteAt = off
	f.mu.Unlock()
}

func (f *FaultFile) SetFailSync(fail bool) {
	f.mu.Lock()
	f.failSync = fail
	f.mu.Unlock()
}

// Written returns total bytes written (durable + cached); SyncedLen the
// durable image length.
func (f *FaultFile) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.diskLen + int64(len(f.cache))
}

func (f *FaultFile) SyncedLen() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.diskLen
}

// UnsyncedLen returns how many written bytes an immediate crash would put
// at risk.
func (f *FaultFile) UnsyncedLen() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.cache))
}

// Crash simulates a machine crash that persisted only keep bytes of the
// unsynced cache (a torn tail when keep lands mid-frame): the durable image
// becomes synced ++ cache[:keep], the rest is gone, and the file is dead to
// further use. keep is clamped to the cache length.
func (f *FaultFile) Crash(keep int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil
	}
	f.crashed = true
	if keep > len(f.cache) {
		keep = len(f.cache)
	}
	if keep > 0 {
		if _, err := f.disk.WriteAt(f.cache[:keep], f.diskLen); err != nil {
			f.disk.Close()
			return err
		}
		f.diskLen += int64(keep)
	}
	// Pin the size so the image is exactly the persisted prefix, even if
	// the file predates this handle (reopened segments).
	if err := f.disk.Truncate(f.diskLen); err != nil {
		f.disk.Close()
		return err
	}
	f.cache = nil
	return f.disk.Close()
}

// CrashReordered simulates the disk persisting a LATER slice of the
// unsynced cache while an earlier part never hit the platter: the durable
// image becomes synced ++ zeros[lo] ++ cache[lo:hi]. Recovery must treat
// the zeroed hole as a torn tail and keep only the records before it.
func (f *FaultFile) CrashReordered(lo, hi int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil
	}
	f.crashed = true
	if hi > len(f.cache) {
		hi = len(f.cache)
	}
	if lo > hi {
		lo = hi
	}
	if lo > 0 {
		// The hole: allocated, never written — reads back as zeros.
		if _, err := f.disk.WriteAt(make([]byte, lo), f.diskLen); err != nil {
			f.disk.Close()
			return err
		}
	}
	if hi > lo {
		if _, err := f.disk.WriteAt(f.cache[lo:hi], f.diskLen+int64(lo)); err != nil {
			f.disk.Close()
			return err
		}
	}
	f.diskLen += int64(hi)
	if err := f.disk.Truncate(f.diskLen); err != nil {
		f.disk.Close()
		return err
	}
	f.cache = nil
	return f.disk.Close()
}
