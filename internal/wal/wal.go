// Package wal is the crash-durability layer under the streaming intake
// engines: a write-ahead log of ingest batches plus a checkpoint manifest,
// so a process killed mid-stream restarts from its last checkpoint and
// replays only the tail of updates that arrived after it.
//
// On disk a WAL directory holds exactly three kinds of files:
//
//	MANIFEST          one TagWALManifest envelope naming the current
//	                  checkpoint sequence number
//	snap-<seq>.bin    the engine snapshot covering records 1..seq
//	wal-<seq>.log     a segment of TagWALRecord envelopes holding the
//	                  records with sequence numbers > seq, concatenated
//
// Every record is one HSYN envelope (magic, version, tag, payload, CRC-32C
// footer) built with the codec package's append-style frame builder, so the
// ingest hot path appends into one reused buffer with no per-record
// allocation. Records carry a strictly increasing sequence number; segment
// files are named by the sequence number their records follow, so recovery
// can order and filter them without reading a separate index.
//
// Commit protocol (Rotate, then Commit a seq ≥ the rotation boundary): a
// checkpoint first cuts a fresh segment — the old segment is flushed,
// fsynced, and closed, so it is complete on disk — then captures the engine
// at some seq at or past the cut (appends keep flowing meanwhile; the
// snapshot may cover a prefix of the new segment) and, after an fsync
// covering that seq, writes snap-<seq>.bin and the new MANIFEST via
// temp-file + fsync + atomic rename, fsyncs the directory, and only then
// deletes the segments whose every record the snapshot covers. A crash
// between any two steps leaves either the old manifest (whose snapshot plus
// the retained segments still cover every durable record) or the new one;
// nothing is deleted before the manifest that supersedes it is durable.
// Replay filters by sequence number, so records the snapshot already covers
// are skipped wherever they sit.
//
// Group commit: appenders serialize on one mutex only long enough to encode
// their record into the shared pending buffer; a single flusher goroutine
// writes the accumulated batch with one write(2) and fsyncs per the
// SyncEvery/SyncInterval policy. With SyncEvery = 1 every Append blocks
// until an fsync covers its record — full durability, with concurrent
// appenders coalesced into one fsync. With SyncEvery > 1 appends return
// after buffering and at most SyncEvery records (or SyncInterval of wall
// time) can be lost to a crash; recovery still sees a clean prefix.
//
// Recovery (Open) reads the manifest, scans every segment in order
// validating each record's CRC and sequence continuity, and tolerates a
// torn tail on the LAST segment: a short read or checksum mismatch there is
// the expected signature of a crash mid-write, so the segment is truncated
// back to its last complete record and the log reopens for appending.
// Corruption anywhere before the tail is data loss and fails loudly.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/codec"
)

// File is the writable handle the log appends through — the seam the fault
// injection harness replaces (see FaultFile). os.File satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OpenFileFunc opens (creating or truncating) a segment file for appending.
type OpenFileFunc func(path string) (File, error)

func osOpenFile(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// Default fsync batching: an fsync at most every DefaultSyncEvery records
// or DefaultSyncInterval of wall time, whichever comes first. Bounded loss
// (at most one batch window) in exchange for ingest throughput within a
// small factor of the in-memory engine; SyncEvery = 1 buys full durability.
const (
	DefaultSyncEvery    = 256
	DefaultSyncInterval = 50 * time.Millisecond
)

// maxPendingBytes is the soft backpressure bound: an appender finding more
// than this much unwritten data waits for the flusher to drain it.
const maxPendingBytes = 4 << 20

// Options tunes a Log. The zero value picks the defaults above.
type Options struct {
	// SyncEvery is the fsync cadence in records: the flusher fsyncs once at
	// most every SyncEvery appended records. 1 means every Append waits for
	// a group-commit fsync covering its record; 0 picks DefaultSyncEvery.
	SyncEvery int
	// SyncInterval bounds how long an appended record may stay unsynced:
	// the flusher fsyncs once the oldest unsynced record is this old, even
	// if fewer than SyncEvery records accumulated. 0 picks
	// DefaultSyncInterval.
	SyncInterval time.Duration
	// OpenFile replaces the segment-file opener — the fault-injection hook.
	// nil uses the operating system.
	OpenFile OpenFileFunc
}

func (o Options) withDefaults() Options {
	if o.SyncEvery <= 0 {
		o.SyncEvery = DefaultSyncEvery
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.OpenFile == nil {
		o.OpenFile = osOpenFile
	}
	return o
}

// Stats is a point-in-time snapshot of the log's write-side counters — the
// raw material of the /metrics WAL families and the durable-ingest
// benchmark cells.
type Stats struct {
	// Appends is the total records appended; AppendedBytes the total frame
	// bytes they encoded to.
	Appends       int64
	AppendedBytes int64
	// Flushes counts group commits (write batches); Fsyncs the fsyncs that
	// made them durable. Appends/Flushes is the mean group-commit size.
	Flushes int64
	Fsyncs  int64
	// MaxGroup is the largest number of records one flush wrote.
	MaxGroup int
	// LastSeq is the last assigned sequence number; SyncedSeq the last one
	// an fsync covers.
	LastSeq   uint64
	SyncedSeq uint64
	// Rotations counts segment cuts (one per checkpoint).
	Rotations int64
}

// Record is one replayed ingest batch.
type Record struct {
	// Seq is the record's sequence number (1-based, strictly increasing).
	Seq uint64
	// Points/Weights are the ingest call's arguments; Weights is nil for
	// unit weights. Both are only valid during the replay callback.
	Points  []int
	Weights []float64
}

// OpenInfo describes what Open found: the checkpoint to restore and where
// replay starts.
type OpenInfo struct {
	// SnapshotSeq is the manifest's checkpoint sequence number: the
	// snapshot covers records 1..SnapshotSeq.
	SnapshotSeq uint64
	// SnapshotPath is the snapshot file to restore.
	SnapshotPath string
	// LastSeq is the last intact record on disk after any tail truncation;
	// Replay yields records SnapshotSeq+1 .. LastSeq.
	LastSeq uint64
	// Truncated reports whether Open cut a torn tail off the last segment.
	Truncated bool
}

// Log is an append-only write-ahead log in one directory. All methods are
// safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu    sync.Mutex
	cond  sync.Cond // broadcast on write/sync progress and ioBusy release
	// pending accumulates encoded frames not yet handed to a write; spare
	// is the idle half of the double buffer (nil while a flush owns it).
	pending     []byte
	spare       []byte
	pendingRecs int
	pendingEnd  uint64 // seq of the last record in pending
	lastSeq     uint64
	writtenSeq  uint64
	syncedSeq   uint64
	// unsynced tracks written-but-not-fsynced records and the arrival time
	// of the oldest, for the SyncInterval policy.
	unsyncedRecs   int
	oldestUnsynced time.Time
	// ioBusy is the single-writer baton: exactly one goroutine does file
	// IO (write/fsync/rotate) at a time, outside mu.
	ioBusy bool
	f      File
	// segStart is the active segment's base: its records have seq > segStart.
	segStart uint64
	err      error
	closed   bool

	kick        chan struct{}
	done        chan struct{}
	flusherDone chan struct{}

	stats Stats
}

const (
	manifestName = "MANIFEST"
	segPrefix    = "wal-"
	segSuffix    = ".log"
	snapPrefix   = "snap-"
	snapSuffix   = ".bin"
)

func segmentPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, start, segSuffix))
}

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
}

// Exists reports whether dir holds an initialized WAL (a manifest).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// Create initializes dir as a fresh WAL: writeSnapshot provides the initial
// engine snapshot (covering zero records), committed as checkpoint 0. The
// directory is created if needed but must not already hold a manifest.
func Create(dir string, opts Options, writeSnapshot func(io.Writer) error) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if Exists(dir) {
		return nil, fmt.Errorf("wal: %s already holds a log (use Open)", dir)
	}
	l := newLog(dir, opts)
	f, err := l.opts.OpenFile(segmentPath(dir, 0))
	if err != nil {
		return nil, err
	}
	l.f = f
	if err := l.commitLocked(0, writeSnapshot); err != nil {
		f.Close()
		return nil, err
	}
	l.start()
	return l, nil
}

// Open recovers the WAL in dir: it reads the manifest, validates every
// segment, truncates a torn tail on the last one, and reopens the log for
// appending. The caller restores OpenInfo.SnapshotPath and then calls
// Replay to apply the tail.
func Open(dir string, opts Options) (*Log, OpenInfo, error) {
	var info OpenInfo
	seq, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, info, err
	}
	info.SnapshotSeq = seq
	info.SnapshotPath = snapshotPath(dir, seq)
	if _, err := os.Stat(info.SnapshotPath); err != nil {
		return nil, info, fmt.Errorf("wal: manifest names checkpoint %d but its snapshot is missing: %w", seq, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, info, err
	}
	if len(segs) == 0 {
		return nil, info, fmt.Errorf("wal: %s has a manifest but no segments", dir)
	}
	// Validate every segment now so recovery fails before any replay side
	// effects. Only the last segment may have a torn tail.
	last := uint64(0)
	for i, s := range segs {
		isLast := i == len(segs)-1
		scan, err := scanSegment(s.path, nil)
		if err != nil {
			return nil, info, err
		}
		if scan.torn && !isLast {
			return nil, info, fmt.Errorf("wal: segment %s is corrupt before the log tail: %v", filepath.Base(s.path), scan.tornErr)
		}
		if scan.records > 0 && scan.firstSeq != s.start+1 {
			return nil, info, fmt.Errorf("wal: segment %s starts at record %d, want %d", filepath.Base(s.path), scan.firstSeq, s.start+1)
		}
		if i > 0 && s.start != last {
			return nil, info, fmt.Errorf("wal: segment %s does not follow record %d", filepath.Base(s.path), last)
		}
		if scan.records > 0 {
			last = scan.lastSeq
		} else {
			last = s.start
		}
		if scan.torn {
			info.Truncated = true
			if err := os.Truncate(s.path, scan.goodBytes); err != nil {
				return nil, info, fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(s.path), err)
			}
		}
	}
	if last < seq {
		return nil, info, fmt.Errorf("wal: log ends at record %d but the checkpoint covers %d", last, seq)
	}
	info.LastSeq = last
	l := newLog(dir, opts)
	l.lastSeq = last
	l.writtenSeq = last
	l.syncedSeq = last
	l.segStart = segs[len(segs)-1].start
	f, err := l.opts.OpenFile(segs[len(segs)-1].path)
	if err != nil {
		return nil, info, err
	}
	l.f = f
	l.stats.LastSeq = last
	l.stats.SyncedSeq = last
	l.start()
	return l, info, nil
}

func newLog(dir string, opts Options) *Log {
	l := &Log{
		dir:  dir,
		opts: opts.withDefaults(),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	l.cond.L = &l.mu
	return l
}

func (l *Log) start() {
	l.flusherDone = make(chan struct{})
	go l.flusher()
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the last assigned record sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats snapshots the write-side counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stats
	st.LastSeq = l.lastSeq
	st.SyncedSeq = l.syncedSeq
	return st
}

// Append encodes one ingest batch as a TagWALRecord frame into the pending
// buffer and returns its sequence number. With SyncEvery = 1 it blocks
// until an fsync covers the record (group-committed with concurrent
// appenders); otherwise it returns after buffering, and the flusher makes
// it durable within the SyncEvery/SyncInterval window. The slices are read
// during the call only — callers may reuse them immediately.
func (l *Log) Append(points []int, weights []float64) (uint64, error) {
	l.mu.Lock()
	for l.err == nil && !l.closed && len(l.pending) > maxPendingBytes {
		l.cond.Wait()
	}
	if l.err != nil || l.closed {
		err := l.err
		if err == nil {
			err = fmt.Errorf("wal: log is closed")
		}
		l.mu.Unlock()
		return 0, err
	}
	seq := l.lastSeq + 1
	l.lastSeq = seq
	start := len(l.pending)
	l.pending = appendRecordFrame(l.pending, seq, points, weights)
	l.stats.Appends++
	l.stats.AppendedBytes += int64(len(l.pending) - start)
	l.pendingRecs++
	l.pendingEnd = seq
	select {
	case l.kick <- struct{}{}:
	default:
	}
	if l.opts.SyncEvery <= 1 {
		for l.err == nil && l.syncedSeq < seq {
			l.cond.Wait()
		}
	}
	err := l.err
	l.mu.Unlock()
	return seq, err
}

// appendRecordFrame encodes one record as a complete HSYN envelope:
// seq, point count, points as uvarints, a weights flag, and the packed
// weight floats.
func appendRecordFrame(dst []byte, seq uint64, points []int, weights []float64) []byte {
	frameStart := len(dst)
	dst = codec.AppendFrameHeader(dst, codec.TagWALRecord)
	dst = codec.AppendUvarint(dst, seq)
	dst = codec.AppendUvarint(dst, uint64(len(points)))
	for _, p := range points {
		dst = codec.AppendUvarint(dst, uint64(p))
	}
	if weights == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = codec.AppendPackedFloat64s(dst, weights)
	}
	return codec.FinishFrame(dst, frameStart)
}

// flusher is the single background writer: it drains the pending buffer
// with one write per wakeup and fsyncs per the SyncEvery/SyncInterval
// policy.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	timer := time.NewTimer(l.opts.SyncInterval)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	for {
		select {
		case <-l.kick:
		case <-timer.C:
			armed = false
		case <-l.done:
			if armed && !timer.Stop() {
				<-timer.C
			}
			l.flushAndSync(true)
			return
		}
		l.flushAndSync(false)
		// Arm the interval timer while written records await their fsync.
		l.mu.Lock()
		wait := time.Duration(0)
		if l.unsyncedRecs > 0 {
			wait = l.opts.SyncInterval - time.Since(l.oldestUnsynced)
			if wait <= 0 {
				wait = time.Millisecond
			}
		}
		l.mu.Unlock()
		if armed && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		armed = false
		if wait > 0 {
			timer.Reset(wait)
			armed = true
		}
	}
}

// acquireIO takes the single-writer IO baton, returning the current
// segment file. Callers must pair with releaseIO.
func (l *Log) acquireIO() File {
	for l.ioBusy {
		l.cond.Wait()
	}
	l.ioBusy = true
	return l.f
}

func (l *Log) releaseIOLocked() {
	l.ioBusy = false
	l.cond.Broadcast()
}

// flushAndSync writes any pending frames and fsyncs when the policy (or
// force) demands it.
func (l *Log) flushAndSync(force bool) {
	l.mu.Lock()
	f := l.acquireIO()
	batch := l.pending
	recs := l.pendingRecs
	end := l.pendingEnd
	if l.spare == nil {
		l.pending = nil
	} else {
		l.pending = l.spare[:0]
	}
	l.spare = nil
	l.pendingRecs = 0
	hadErr := l.err != nil
	l.mu.Unlock()

	var ioErr error
	wrote := false
	if !hadErr && len(batch) > 0 {
		n, err := f.Write(batch)
		if err == nil && n != len(batch) {
			err = io.ErrShortWrite
		}
		if err != nil {
			ioErr = fmt.Errorf("wal: segment write: %w", err)
		} else {
			wrote = true
		}
	}

	l.mu.Lock()
	if l.spare == nil || cap(batch) > cap(l.spare) {
		l.spare = batch[:0]
	}
	if ioErr != nil && l.err == nil {
		l.err = ioErr
	}
	if wrote {
		l.writtenSeq = end
		if l.unsyncedRecs == 0 {
			l.oldestUnsynced = time.Now()
		}
		l.unsyncedRecs += recs
		l.stats.Flushes++
		if recs > l.stats.MaxGroup {
			l.stats.MaxGroup = recs
		}
	}
	needSync := l.err == nil && l.unsyncedRecs > 0 &&
		(force || l.opts.SyncEvery <= 1 || l.unsyncedRecs >= l.opts.SyncEvery ||
			time.Since(l.oldestUnsynced) >= l.opts.SyncInterval)
	if !needSync {
		l.releaseIOLocked()
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	l.mu.Unlock()

	syncErr := f.Sync()

	l.mu.Lock()
	if syncErr != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: fsync: %w", syncErr)
		}
	} else {
		l.syncedSeq = l.writtenSeq
		l.unsyncedRecs = 0
		l.stats.Fsyncs++
	}
	l.releaseIOLocked()
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Sync forces every appended record to stable storage before returning.
func (l *Log) Sync() error {
	l.flushAndSync(true)
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Fail poisons the log with the caller's error: every subsequent Append,
// Sync, Rotate, and Commit fails with it, exactly as an internal IO failure
// would. The durability layer uses it when the log durably recorded an
// operation the engine then failed to apply — appending further records
// would grow a history that no longer matches any engine state. An already
// failed or nil error is ignored (first error wins, like internal failures).
func (l *Log) Fail(err error) {
	if err == nil {
		return
	}
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// Rotate cuts a new segment: it drains and fsyncs the current one, closes
// it, and opens wal-<boundary>.log as the new append target, returning the
// boundary sequence number. A following Commit may checkpoint the boundary
// itself or any later seq (capture-after-cut — see the commit protocol in
// the package comment). The IO baton is held across the whole
// drain+close+reopen, so records appended concurrently land in one segment
// or the other, never lost and never left unsynced in a closed segment;
// appenders themselves never touch the file, so ingestion does not stall on
// the rotation fsync.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	f := l.acquireIO()
	if l.err != nil || l.closed {
		err := l.err
		if err == nil {
			err = fmt.Errorf("wal: log is closed")
		}
		l.releaseIOLocked()
		l.mu.Unlock()
		return 0, err
	}
	batch := l.pending
	recs := l.pendingRecs
	end := l.pendingEnd
	if l.spare == nil {
		l.pending = nil
	} else {
		l.pending = l.spare[:0]
	}
	l.spare = nil
	l.pendingRecs = 0
	l.mu.Unlock()

	var ioErr error
	if len(batch) > 0 {
		n, err := f.Write(batch)
		if err == nil && n != len(batch) {
			err = io.ErrShortWrite
		}
		if err != nil {
			ioErr = fmt.Errorf("wal: segment write: %w", err)
		}
	}
	if ioErr == nil {
		if err := f.Sync(); err != nil {
			ioErr = fmt.Errorf("wal: fsync: %w", err)
		}
	}
	if ioErr == nil {
		if err := f.Close(); err != nil {
			ioErr = fmt.Errorf("wal: closing segment: %w", err)
		}
	}

	l.mu.Lock()
	if l.spare == nil || cap(batch) > cap(l.spare) {
		l.spare = batch[:0]
	}
	if ioErr != nil {
		if l.err == nil {
			l.err = ioErr
		}
		l.releaseIOLocked()
		l.cond.Broadcast()
		l.mu.Unlock()
		return 0, ioErr
	}
	if recs > 0 {
		l.writtenSeq = end
		l.stats.Flushes++
		if recs > l.stats.MaxGroup {
			l.stats.MaxGroup = recs
		}
	}
	l.syncedSeq = l.writtenSeq
	l.unsyncedRecs = 0
	l.stats.Fsyncs++
	boundary := l.writtenSeq
	l.mu.Unlock()

	nf, err := l.opts.OpenFile(segmentPath(l.dir, boundary))

	l.mu.Lock()
	if err != nil {
		if l.err == nil {
			l.err = fmt.Errorf("wal: opening segment: %w", err)
		}
		l.releaseIOLocked()
		l.cond.Broadcast()
		l.mu.Unlock()
		return 0, l.err
	}
	l.f = nf
	l.segStart = boundary
	l.stats.Rotations++
	l.releaseIOLocked()
	l.cond.Broadcast()
	l.mu.Unlock()
	return boundary, nil
}

// Commit durably installs checkpoint seq: it writes snap-<seq>.bin and the
// manifest (temp file, fsync, atomic rename, directory fsync) and then
// removes the segments and snapshots the new checkpoint supersedes. seq may
// be any sequence number at or past the last Rotate boundary, provided an
// fsync already covers it — callers capture their snapshot after rotating
// and call Sync before Commit, so the manifest never names records the log
// could still lose.
func (l *Log) Commit(seq uint64, writeSnapshot func(io.Writer) error) error {
	if err := l.commitLocked(seq, writeSnapshot); err != nil {
		l.mu.Lock()
		if l.err == nil {
			l.err = err
		}
		l.mu.Unlock()
		return err
	}
	return nil
}

func (l *Log) commitLocked(seq uint64, writeSnapshot func(io.Writer) error) error {
	if err := writeFileDurably(snapshotPath(l.dir, seq), func(w io.Writer) error {
		return writeSnapshot(w)
	}); err != nil {
		return fmt.Errorf("wal: writing snapshot %d: %w", seq, err)
	}
	if err := writeFileDurably(filepath.Join(l.dir, manifestName), func(w io.Writer) error {
		enc := codec.NewWriter(w, codec.TagWALManifest)
		enc.Uvarint(seq)
		return enc.Close()
	}); err != nil {
		return fmt.Errorf("wal: writing manifest %d: %w", seq, err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	// The new manifest is durable: everything it supersedes can go. A crash
	// before (or during) this cleanup only leaves stale files that the next
	// Commit removes.
	l.removeSuperseded(seq)
	return nil
}

// removeSuperseded deletes segments whose records the checkpoint covers and
// snapshots other than the committed one. Segment wal-<start>.log holds
// records start+1 through the next segment's start, so it is redundant
// exactly when the NEXT segment starts at or before seq — a rule that also
// covers checkpoints cut past the rotation boundary, where the active
// segment's start is below seq but its tail is live. Best-effort: a failure
// leaves a stale file, never an inconsistent log.
func (l *Log) removeSuperseded(seq uint64) {
	segs, err := listSegments(l.dir)
	if err == nil {
		for i := 0; i+1 < len(segs); i++ {
			if segs[i+1].start <= seq {
				os.Remove(segs[i].path)
			}
		}
	}
	ents, err := os.ReadDir(l.dir)
	if err == nil {
		for _, e := range ents {
			name := e.Name()
			if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
				continue
			}
			s, perr := parseSeq(name, snapPrefix, snapSuffix)
			if perr == nil && s != seq {
				os.Remove(filepath.Join(l.dir, name))
			}
		}
	}
}

// Replay yields every intact record with Seq > after, in order. It reads
// the segment files directly, so it is only meaningful before new appends
// rotate segments away — i.e. during recovery, before ingest resumes.
func (l *Log) Replay(after uint64, fn func(Record) error) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		scan, err := scanSegment(s.path, func(r Record) error {
			if r.Seq <= after {
				return nil
			}
			return fn(r)
		})
		if err != nil {
			return err
		}
		if scan.torn {
			// Open already truncated torn tails; hitting one here means the
			// file changed underneath us.
			return fmt.Errorf("wal: segment %s: %v", filepath.Base(s.path), scan.tornErr)
		}
	}
	return nil
}

// Close flushes and fsyncs everything appended, stops the flusher, and
// closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	close(l.done)
	<-l.flusherDone

	l.mu.Lock()
	f := l.acquireIO()
	l.mu.Unlock()
	cerr := f.Close()
	l.mu.Lock()
	if cerr != nil && l.err == nil {
		l.err = fmt.Errorf("wal: closing segment: %w", cerr)
	}
	err := l.err
	l.releaseIOLocked()
	l.mu.Unlock()
	return err
}

// --- Segment scanning. ---

type segInfo struct {
	start uint64
	path  string
}

func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		start, err := parseSeq(name, segPrefix, segSuffix)
		if err != nil {
			return nil, fmt.Errorf("wal: bad segment name %q", name)
		}
		segs = append(segs, segInfo{start: start, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

func parseSeq(name, prefix, suffix string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
}

type scanResult struct {
	records   int
	firstSeq  uint64
	lastSeq   uint64
	goodBytes int64
	torn      bool
	tornErr   error
}

// countingReader counts the bytes the codec Reader consumes — exactly the
// envelope bytes, since the Reader never over-reads — so frame offsets fall
// out of the scan.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanSegment validates one segment record by record. A decode error is
// reported as a torn tail (records before it stay good); fn, when non-nil,
// sees every intact record.
func scanSegment(path string, fn func(Record) error) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, err
	}
	defer f.Close()
	return scanRecords(f, fn)
}

// scanRecords is scanSegment on an arbitrary stream (exported for offsets
// via SegmentOffsets and reused by tests on in-memory crash images).
func scanRecords(r io.Reader, fn func(Record) error) (scanResult, error) {
	cr := &countingReader{r: newBufferedReader(r)}
	var res scanResult
	var prevSeq uint64
	first := true
	var points []int
	var weights []float64
	for {
		rec, err := readRecord(cr, &points, &weights)
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			res.torn = true
			res.tornErr = err
			return res, nil
		}
		if !first && rec.Seq != prevSeq+1 {
			res.torn = true
			res.tornErr = fmt.Errorf("wal: record %d follows %d", rec.Seq, prevSeq)
			return res, nil
		}
		if first {
			res.firstSeq = rec.Seq
			first = false
		}
		prevSeq = rec.Seq
		res.lastSeq = rec.Seq
		res.records++
		res.goodBytes = cr.n
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
	}
}

// newBufferedReader smooths syscalls under the countingReader. Buffering
// must sit BELOW the counter so goodBytes stays exact: countingReader
// counts what the codec Reader consumes, and the codec Reader never reads
// past its envelope, so the count lands precisely on frame boundaries.
func newBufferedReader(r io.Reader) io.Reader {
	return &bufReader{r: r}
}

// bufReader serves Read calls from an internal read-ahead buffer but only
// hands out what is asked, never claiming bytes the caller didn't consume.
type bufReader struct {
	r   io.Reader
	buf [4096]byte
	i   int
	n   int
}

func (b *bufReader) Read(p []byte) (int, error) {
	if b.i == b.n {
		n, err := b.r.Read(b.buf[:])
		if n == 0 {
			return 0, err
		}
		b.i, b.n = 0, n
	}
	n := copy(p, b.buf[b.i:b.n])
	b.i += n
	return n, nil
}

// readRecord decodes one TagWALRecord envelope. io.EOF means a clean end of
// segment (EOF before any header byte); any other failure is a torn or
// corrupt record.
func readRecord(r io.Reader, points *[]int, weights *[]float64) (Record, error) {
	// Peek one byte to distinguish clean EOF from a torn header.
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, err
	}
	dec := codec.NewReader(io.MultiReader(strings.NewReader(string(one[:])), r))
	tag, err := dec.Header()
	if err != nil {
		return Record{}, err
	}
	if tag != codec.TagWALRecord {
		return Record{}, fmt.Errorf("wal: envelope holds type tag %d, not a WAL record", tag)
	}
	var rec Record
	if rec.Seq, err = dec.Uvarint(); err != nil {
		return Record{}, err
	}
	count, err := dec.SliceLen()
	if err != nil {
		return Record{}, err
	}
	if cap(*points) < count {
		*points = make([]int, count)
	}
	*points = (*points)[:count]
	for i := range *points {
		if (*points)[i], err = dec.Int(); err != nil {
			return Record{}, err
		}
	}
	rec.Points = *points
	flag, err := dec.ReadByte()
	if err != nil {
		return Record{}, err
	}
	switch flag {
	case 0:
		rec.Weights = nil
	case 1:
		ws, err := dec.PackedFloat64s()
		if err != nil {
			return Record{}, err
		}
		if len(ws) != count {
			return Record{}, fmt.Errorf("wal: %d weights for %d points", len(ws), count)
		}
		*weights = ws
		rec.Weights = ws
	default:
		return Record{}, fmt.Errorf("wal: bad weights flag %d", flag)
	}
	if err := dec.Close(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// SegmentOffsets returns the byte offset of the END of each intact record
// frame in the segment — the crash points the recovery property tests sweep.
func SegmentOffsets(path string) ([]int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := &countingReader{r: newBufferedReader(f)}
	var offs []int64
	var points []int
	var weights []float64
	for {
		_, err := readRecord(cr, &points, &weights)
		if err == io.EOF {
			return offs, nil
		}
		if err != nil {
			return offs, nil
		}
		offs = append(offs, cr.n)
	}
}

// SegmentPath returns the path of the segment whose records follow seq.
func SegmentPath(dir string, start uint64) string { return segmentPath(dir, start) }

// readManifest decodes the TagWALManifest envelope.
func readManifest(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	dec := codec.NewReader(f)
	tag, err := dec.Header()
	if err != nil {
		return 0, err
	}
	if tag != codec.TagWALManifest {
		return 0, fmt.Errorf("wal: %s holds type tag %d, not a manifest", filepath.Base(path), tag)
	}
	seq, err := dec.Uvarint()
	if err != nil {
		return 0, err
	}
	if err := dec.Close(); err != nil {
		return 0, err
	}
	return seq, nil
}

// writeFileDurably writes path atomically: temp file in the same directory,
// fsync, rename over the target.
func writeFileDurably(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
