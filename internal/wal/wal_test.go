package wal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// writeSnap returns a snapshot writer that emits a recognizable payload.
func writeSnap(label string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, "SNAP:"+label)
		return err
	}
}

func mustCreate(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Create(dir, opts, writeSnap("init"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return l
}

type rec struct {
	seq     uint64
	points  []int
	weights []float64
}

func appendN(t *testing.T, l *Log, n int, withWeights bool) []rec {
	t.Helper()
	var recs []rec
	base := int(l.LastSeq()) * 10
	for i := 0; i < n; i++ {
		points := []int{base + i, base + i + 7, i % 3}
		var weights []float64
		if withWeights {
			weights = []float64{1.5, float64(i) + 0.25, 2}
		}
		seq, err := l.Append(points, weights)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		recs = append(recs, rec{seq: seq, points: points, weights: weights})
	}
	return recs
}

func replayAll(t *testing.T, l *Log, after uint64) []rec {
	t.Helper()
	var got []rec
	err := l.Replay(after, func(r Record) error {
		got = append(got, rec{
			seq:     r.Seq,
			points:  append([]int(nil), r.Points...),
			weights: append([]float64(nil), r.Weights...),
		})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func sameRecs(t *testing.T, got, want []rec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].seq != want[i].seq || !reflect.DeepEqual(got[i].points, want[i].points) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		gw, ww := got[i].weights, want[i].weights
		if len(gw) == 0 && len(ww) == 0 {
			continue
		}
		if !reflect.DeepEqual(gw, ww) {
			t.Fatalf("record %d weights: got %v want %v", i, gw, ww)
		}
	}
}

// TestWALAppendReplayRoundTrip: records written (with and without weights)
// come back bit-identical after close and reopen.
func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{})
	want := appendN(t, l, 17, false)
	want = append(want, appendN(t, l, 13, true)...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if info.SnapshotSeq != 0 {
		t.Fatalf("SnapshotSeq = %d, want 0", info.SnapshotSeq)
	}
	if info.LastSeq != 30 {
		t.Fatalf("LastSeq = %d, want 30", info.LastSeq)
	}
	if info.Truncated {
		t.Fatal("clean log reported as truncated")
	}
	blob, err := os.ReadFile(info.SnapshotPath)
	if err != nil || string(blob) != "SNAP:init" {
		t.Fatalf("snapshot = %q, %v", blob, err)
	}
	sameRecs(t, replayAll(t, l2, 0), want)

	// Appends resume with the next sequence number.
	seq, err := l2.Append([]int{1}, nil)
	if err != nil || seq != 31 {
		t.Fatalf("resumed Append → %d, %v; want 31", seq, err)
	}
}

// TestWALRotateCommitRecovery: a checkpoint truncates the log — replay
// after reopen yields only the tail, and superseded files are gone.
func TestWALRotateCommitRecovery(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{})
	pre := appendN(t, l, 9, true)
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if boundary != 9 {
		t.Fatalf("boundary = %d, want 9", boundary)
	}
	if err := l.Commit(boundary, writeSnap("ckpt9")); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	post := appendN(t, l, 5, false)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_ = pre

	if _, err := os.Stat(segmentPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("superseded segment survives: %v", err)
	}
	if _, err := os.Stat(snapshotPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("superseded snapshot survives: %v", err)
	}

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if info.SnapshotSeq != 9 || info.LastSeq != 14 {
		t.Fatalf("info = %+v, want snapshot 9 last 14", info)
	}
	blob, _ := os.ReadFile(info.SnapshotPath)
	if string(blob) != "SNAP:ckpt9" {
		t.Fatalf("snapshot = %q", blob)
	}
	sameRecs(t, replayAll(t, l2, info.SnapshotSeq), post)
}

// TestWALCommitPastRotationBoundary: the capture-after-cut protocol —
// records appended between Rotate and Commit land in the new segment with
// seq ≤ the committed checkpoint, the active segment survives pruning even
// though its name is below the checkpoint seq, and recovery replays only
// the records past the snapshot.
func TestWALCommitPastRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{})
	appendN(t, l, 6, true)
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if boundary != 6 {
		t.Fatalf("boundary = %d, want 6", boundary)
	}
	// Ingestion continues during the capture: three more records land in
	// wal-6.log, and the engine snapshot covers them too.
	covered := appendN(t, l, 3, false)
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Commit(l.LastSeq(), writeSnap("ckpt9")); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	_ = covered
	post := appendN(t, l, 4, true)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// wal-0.log is fully covered (its records end at 6 ≤ 9); wal-6.log must
	// survive even though 6 < 9 — its tail holds records 10..13.
	if _, err := os.Stat(segmentPath(dir, 0)); !os.IsNotExist(err) {
		t.Fatalf("superseded segment survives: %v", err)
	}
	if _, err := os.Stat(segmentPath(dir, 6)); err != nil {
		t.Fatalf("active segment pruned: %v", err)
	}

	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if info.SnapshotSeq != 9 || info.LastSeq != 13 {
		t.Fatalf("info = %+v, want snapshot 9 last 13", info)
	}
	sameRecs(t, replayAll(t, l2, info.SnapshotSeq), post)

	// The next checkpoint prunes wal-6.log once a later segment covers it.
	if _, err := l2.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l2.Commit(l2.LastSeq(), writeSnap("ckpt13")); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if _, err := os.Stat(segmentPath(dir, 6)); !os.IsNotExist(err) {
		t.Fatalf("covered segment survives second checkpoint: %v", err)
	}
}

// TestWALRecoveryTornTail: truncating the last segment mid-frame (or
// flipping a bit in its tail) recovers the longest intact prefix — never a
// panic, never an error.
func TestWALRecoveryTornTail(t *testing.T) {
	build := func(t *testing.T) (string, []rec, string) {
		dir := t.TempDir()
		l := mustCreate(t, dir, Options{})
		recs := appendN(t, l, 12, true)
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return dir, recs, segmentPath(dir, 0)
	}

	t.Run("short", func(t *testing.T) {
		dir, recs, seg := build(t)
		offs, err := SegmentOffsets(seg)
		if err != nil || len(offs) != 12 {
			t.Fatalf("offsets: %v, %v", offs, err)
		}
		// Cut mid-way through the final frame.
		cut := offs[10] + (offs[11]-offs[10])/2
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatal(err)
		}
		l, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open after torn tail: %v", err)
		}
		defer l.Close()
		if !info.Truncated || info.LastSeq != 11 {
			t.Fatalf("info = %+v, want truncated last 11", info)
		}
		st, _ := os.Stat(seg)
		if st.Size() != offs[10] {
			t.Fatalf("segment %d bytes after truncate, want %d", st.Size(), offs[10])
		}
		sameRecs(t, replayAll(t, l, 0), recs[:11])
	})

	t.Run("bitflip", func(t *testing.T) {
		dir, recs, seg := build(t)
		offs, err := SegmentOffsets(seg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt a byte inside the last frame's payload.
		blob[offs[10]+8] ^= 0x40
		if err := os.WriteFile(seg, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		l, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open after bit flip: %v", err)
		}
		defer l.Close()
		if !info.Truncated || info.LastSeq != 11 {
			t.Fatalf("info = %+v, want truncated last 11", info)
		}
		sameRecs(t, replayAll(t, l, 0), recs[:11])
	})

	t.Run("empty-tail", func(t *testing.T) {
		dir, _, seg := build(t)
		if err := os.Truncate(seg, 3); err != nil { // shorter than any header
			t.Fatal(err)
		}
		l, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		defer l.Close()
		if !info.Truncated || info.LastSeq != 0 {
			t.Fatalf("info = %+v, want truncated last 0", info)
		}
	})
}

// TestWALRecoveryRejectsMidLogCorruption: corruption in a segment BEFORE
// the tail is unrecoverable data loss and must fail loudly, not silently
// drop records.
func TestWALRecoveryRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{})
	appendN(t, l, 6, false)
	boundary, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 6, false)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Both segments still present (no Commit), corrupt the FIRST.
	seg0 := segmentPath(dir, 0)
	blob, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(seg0, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("Open accepted corruption before the tail (boundary %d)", boundary)
	}
}

// TestWALCrashRecoverySweep drives the FaultFS page-cache model: for every
// possible torn length of the unsynced tail, recovery yields a clean,
// contiguous prefix that includes everything fsynced.
func TestWALCrashRecoverySweep(t *testing.T) {
	// Record one run to learn the cache size, then sweep torn lengths.
	probe := func(keep int) {
		fs := NewFaultFS()
		dir := t.TempDir()
		l, err := Create(dir, Options{SyncEvery: 1000, SyncInterval: 1e15, OpenFile: fs.Open}, writeSnap("init"))
		if err != nil {
			t.Fatal(err)
		}
		recs := appendN(t, l, 4, true)
		if err := l.Sync(); err != nil { // records 1..4 durable
			t.Fatal(err)
		}
		recs = append(recs, appendN(t, l, 4, false)...) // 5..8 at risk
		// Push the appended-but-pending bytes into the "page cache"
		// without fsync so a crash can tear them.
		l.flushAndSync(false)
		ff := fs.File(segmentPath(dir, 0))
		if ff == nil {
			t.Fatal("no fault file for segment")
		}
		if ff.UnsyncedLen() == 0 {
			t.Fatal("probe expected unsynced bytes")
		}
		if keep > int(ff.UnsyncedLen()) {
			return
		}
		if err := ff.Crash(keep); err != nil {
			t.Fatal(err)
		}
		// The log is now poisoned for IO but the directory is the crash
		// image; recover from it.
		l2, info, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("keep=%d: Open: %v", keep, err)
		}
		defer l2.Close()
		if info.LastSeq < 4 {
			t.Fatalf("keep=%d: recovered LastSeq %d lost fsynced records", keep, info.LastSeq)
		}
		got := replayAll(t, l2, 0)
		sameRecs(t, got, recs[:info.LastSeq])
	}

	// Learn the unsynced size once.
	fs := NewFaultFS()
	dir := t.TempDir()
	l, err := Create(dir, Options{SyncEvery: 1000, SyncInterval: 1e15, OpenFile: fs.Open}, writeSnap("init"))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, true)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, false)
	l.flushAndSync(false)
	size := int(fs.File(segmentPath(dir, 0)).UnsyncedLen())
	if size == 0 {
		t.Fatal("no unsynced bytes to sweep")
	}
	for keep := 0; keep <= size; keep++ {
		probe(keep)
	}
}

// TestWALCrashRecoveryReorderedWrites: a later slice of the unsynced tail
// persists while an earlier hole reads back as zeros — recovery must stop
// at the hole.
func TestWALCrashRecoveryReorderedWrites(t *testing.T) {
	fs := NewFaultFS()
	dir := t.TempDir()
	l, err := Create(dir, Options{SyncEvery: 1000, SyncInterval: 1e15, OpenFile: fs.Open}, writeSnap("init"))
	if err != nil {
		t.Fatal(err)
	}
	recs := appendN(t, l, 3, false)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, true)
	l.flushAndSync(false)
	ff := fs.File(segmentPath(dir, 0))
	n := int(ff.UnsyncedLen())
	if n < 8 {
		t.Fatalf("want a multi-record unsynced tail, have %d bytes", n)
	}
	// Persist only the second half of the tail; the first half is a hole.
	if err := ff.CrashReordered(n/2, n); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after reordered crash: %v", err)
	}
	defer l2.Close()
	if !info.Truncated {
		t.Fatal("zeroed hole not detected as torn tail")
	}
	if info.LastSeq != 3 {
		t.Fatalf("LastSeq = %d, want the fsynced prefix 3", info.LastSeq)
	}
	sameRecs(t, replayAll(t, l2, 0), recs[:3])
}

// TestWALWriteFailurePoisonsLog: an injected write error surfaces on
// Append/Sync and every later call — no panic, no silent loss.
func TestWALWriteFailurePoisonsLog(t *testing.T) {
	fs := NewFaultFS()
	fs.NextFailWriteAt = 100
	dir := t.TempDir()
	l, err := Create(dir, Options{SyncEvery: 1, OpenFile: fs.Open}, writeSnap("init"))
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 64 && firstErr == nil; i++ {
		_, firstErr = l.Append([]int{i, i + 1, i + 2}, []float64{1, 2, 3})
	}
	if firstErr == nil {
		t.Fatal("write failure never surfaced")
	}
	if _, err := l.Append([]int{1}, nil); err == nil {
		t.Fatal("poisoned log accepted a new append")
	}
	if err := l.Close(); err == nil {
		t.Fatal("poisoned log closed clean")
	}
}

// TestWALSyncFailureSurfaces: fsync failure reaches the SyncEvery=1
// appender (which must not hang) and poisons the log.
func TestWALSyncFailureSurfaces(t *testing.T) {
	fs := NewFaultFS()
	fs.NextFailSync = true
	dir := t.TempDir()
	l, err := Create(dir, Options{SyncEvery: 1, OpenFile: fs.Open}, writeSnap("init"))
	// Create's initial Commit never fsyncs through the segment file, so it
	// succeeds; the first append hits the failure.
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]int{1, 2}, nil); err == nil {
		t.Fatal("fsync failure never surfaced to the appender")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("Sync reported success on a poisoned log")
	}
}

// TestWALGroupCommitCoalesces: with SyncEvery=1, concurrent appenders share
// fsyncs — and every append is durable when it returns.
func TestWALGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{SyncEvery: 1})
	const G, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]int{g, i}, nil); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != G*per {
		t.Fatalf("appends = %d, want %d", st.Appends, G*per)
	}
	if st.SyncedSeq != uint64(G*per) {
		t.Fatalf("SyncedSeq = %d, want %d (SyncEvery=1 must be durable on return)", st.SyncedSeq, G*per)
	}
	if st.Fsyncs == 0 || st.Fsyncs > st.Appends {
		t.Fatalf("fsyncs = %d for %d appends", st.Fsyncs, st.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// All records intact on reopen.
	l2, info, err := Open(dir, Options{})
	if err != nil || info.LastSeq != G*per {
		t.Fatalf("reopen: last %d, %v", info.LastSeq, err)
	}
	seen := 0
	if err := l2.Replay(0, func(r Record) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != G*per {
		t.Fatalf("replayed %d, want %d", seen, G*per)
	}
	l2.Close()
}

// TestWALOpenErrors: the paths that must fail do fail.
func TestWALOpenErrors(t *testing.T) {
	if _, _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Fatal("Open on an empty dir succeeded")
	}
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{})
	l.Close()
	if _, err := Create(dir, Options{}, writeSnap("again")); err == nil {
		t.Fatal("Create over an existing log succeeded")
	}
	// A manifest whose snapshot vanished is unrecoverable.
	if err := os.Remove(snapshotPath(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open without the manifest's snapshot succeeded")
	}
}

// TestWALManifestIsAtomic: a leftover manifest temp file (crash mid-commit)
// does not confuse recovery.
func TestWALManifestIsAtomic(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{})
	recs := appendN(t, l, 5, false)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-Commit: tmp files written, rename never happened.
	if err := os.WriteFile(filepath.Join(dir, manifestName+".tmp"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshotPath(dir, 5)+".tmp", []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, info, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l2.Close()
	if info.SnapshotSeq != 0 || info.LastSeq != 5 {
		t.Fatalf("info = %+v", info)
	}
	sameRecs(t, replayAll(t, l2, 0), recs)
}

// TestWALStatsAccounting sanity-checks the counters the /metrics endpoint
// exports.
func TestWALStatsAccounting(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{SyncEvery: 4})
	appendN(t, l, 10, true)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 10 || st.LastSeq != 10 || st.SyncedSeq != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AppendedBytes <= 0 || st.Flushes <= 0 || st.Fsyncs <= 0 || st.MaxGroup <= 0 {
		t.Fatalf("degenerate stats: %+v", st)
	}
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Rotations; got != 1 {
		t.Fatalf("rotations = %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALBackpressure: appenders stall (rather than buffering unboundedly)
// when the flusher cannot drain, and resume when it can. Uses a fault file
// with sync disabled but writes allowed — pending drains normally, so this
// just exercises the bound arithmetic with big batches.
func TestWALBackpressure(t *testing.T) {
	dir := t.TempDir()
	l := mustCreate(t, dir, Options{SyncEvery: 1 << 30, SyncInterval: 1e15})
	big := make([]int, 64<<10)
	for i := range big {
		big[i] = i
	}
	for i := 0; i < 40; i++ { // ~40 × ~128KiB of varints ≫ maxPendingBytes
		if _, err := l.Append(big, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, info, err := Open(dir, Options{})
	if err != nil || info.LastSeq != 40 {
		t.Fatalf("reopen: %+v, %v", info, err)
	}
	l2.Close()
}

func TestWALSegmentNamesSortable(t *testing.T) {
	for _, seq := range []uint64{0, 9, 10, 99, 1 << 40} {
		p := segmentPath("d", seq)
		q := snapshotPath("d", seq)
		if filepath.Dir(p) != "d" || filepath.Dir(q) != "d" {
			t.Fatalf("bad paths %q %q", p, q)
		}
	}
	a := segmentPath("", 2)
	b := segmentPath("", 10)
	if !(a < b) {
		t.Fatalf("zero-padded names must sort numerically: %q vs %q", a, b)
	}
}

func TestWALExists(t *testing.T) {
	dir := t.TempDir()
	if Exists(dir) {
		t.Fatal("empty dir reported as a log")
	}
	l := mustCreate(t, dir, Options{})
	defer l.Close()
	if !Exists(dir) {
		t.Fatal("created log not detected")
	}
}

// TestWALFailPoisonsLog: a caller-injected failure (Log.Fail) poisons the
// log exactly like an internal IO error — the first error wins and every
// later Append, Sync, and Rotate returns it.
func TestWALFailPoisonsLog(t *testing.T) {
	l := mustCreate(t, t.TempDir(), Options{})
	if _, err := l.Append([]int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("engine diverged from the log")
	l.Fail(nil) // nil is ignored
	if _, err := l.Append([]int{3}, nil); err != nil {
		t.Fatalf("Append after Fail(nil) = %v, want success", err)
	}
	l.Fail(sentinel)
	l.Fail(errors.New("a later failure")) // first error wins
	if _, err := l.Append([]int{4}, nil); !errors.Is(err, sentinel) {
		t.Fatalf("Append after Fail = %v, want the injected error", err)
	}
	if err := l.Sync(); !errors.Is(err, sentinel) {
		t.Fatalf("Sync after Fail = %v, want the injected error", err)
	}
	if _, err := l.Rotate(); !errors.Is(err, sentinel) {
		t.Fatalf("Rotate after Fail = %v, want the injected error", err)
	}
	if err := l.Close(); err == nil {
		t.Fatal("failed log closed clean")
	}
}
