package wavelet

import (
	"fmt"
	"io"

	"repro/internal/codec"
)

// EncodePayload writes the synopsis' stored state: original and padded
// lengths, the delta-encoded kept-coefficient indices, their raw-bits
// values, and the dropped energy (the Parseval error term, which cannot be
// recomputed from the kept coefficients alone).
func EncodePayload(w *codec.Writer, s *Synopsis) {
	w.Int(s.n)
	w.Int(s.pn)
	w.DeltaInts(s.indices)
	w.PackedFloat64s(s.values)
	w.Float64(s.droppedEnergy)
}

// DecodePayload reads and validates a synopsis payload: pn a power of two
// with n ≤ pn < 2n (what Pad produces), at least one kept coefficient,
// indices strictly increasing inside [0, pn), finite values, and a finite
// non-negative dropped energy.
func DecodePayload(r *codec.Reader) (*Synopsis, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	pn, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n < 1 || pn < n || pn&(pn-1) != 0 || (pn > 1 && pn/2 >= n) {
		return nil, fmt.Errorf("wavelet: padded length %d invalid for original length %d", pn, n)
	}
	indices, err := r.DeltaInts()
	if err != nil {
		return nil, err
	}
	if len(indices) == 0 {
		return nil, fmt.Errorf("wavelet: synopsis with no coefficients")
	}
	if indices[0] < 0 || indices[len(indices)-1] >= pn {
		return nil, fmt.Errorf("wavelet: coefficient indices outside [0, %d)", pn)
	}
	values, err := r.PackedFloat64s()
	if err != nil {
		return nil, err
	}
	if len(values) != len(indices) {
		return nil, fmt.Errorf("wavelet: %d values for %d indices", len(values), len(indices))
	}
	dropped, err := r.FiniteFloat64()
	if err != nil {
		return nil, err
	}
	if dropped < 0 {
		return nil, fmt.Errorf("wavelet: negative dropped energy %v", dropped)
	}
	return &Synopsis{n: n, pn: pn, indices: indices, values: values, droppedEnergy: dropped}, nil
}

// WriteTo encodes the synopsis as one binary envelope (see internal/codec)
// and implements io.WriterTo. A decoded synopsis reconstructs and reports
// its error bit-identically: the inverse transform is a pure function of
// the stored coefficients.
func (s *Synopsis) WriteTo(w io.Writer) (int64, error) {
	enc := codec.NewWriter(w, codec.TagWavelet)
	EncodePayload(enc, s)
	err := enc.Close()
	return enc.Len(), err
}

// ReadFrom decodes one binary envelope into the receiver and implements
// io.ReaderFrom. Validation happens before the receiver is touched.
func (s *Synopsis) ReadFrom(r io.Reader) (int64, error) {
	dec := codec.NewReader(r)
	tag, err := dec.Header()
	if err != nil {
		return dec.Len(), err
	}
	if tag != codec.TagWavelet {
		return dec.Len(), fmt.Errorf("wavelet: envelope holds type tag %d, not a wavelet synopsis", tag)
	}
	fresh, err := DecodePayload(dec)
	if err != nil {
		return dec.Len(), err
	}
	if err := dec.Close(); err != nil {
		return dec.Len(), err
	}
	*s = *fresh
	return dec.Len(), nil
}

// Decode reads one synopsis envelope from r.
func Decode(r io.Reader) (*Synopsis, error) {
	s := new(Synopsis)
	if _, err := s.ReadFrom(r); err != nil {
		return nil, err
	}
	return s, nil
}
