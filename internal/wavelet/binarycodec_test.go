package wavelet

import (
	"bytes"
	"math"
	"testing"
)

func TestSynopsisBinaryRoundTrip(t *testing.T) {
	fixtures := map[string][]float64{
		"single":     {3.5},
		"dyadic":     {1, 1, 2, 2, 8, 8, 8, 8},
		"non-dyadic": {0.5, -1.5, 2.25, 7, 7, 7.125},
		"long ramp": func() []float64 {
			q := make([]float64, 300)
			for i := range q {
				q[i] = float64(i) * 0.01
			}
			return q
		}(),
	}
	for name, q := range fixtures {
		for _, b := range []int{1, 3, 1000} {
			s, err := NewSynopsis(q, b)
			if err != nil {
				t.Fatalf("%s b=%d: %v", name, b, err)
			}
			var buf bytes.Buffer
			if n, err := s.WriteTo(&buf); err != nil || n != int64(buf.Len()) {
				t.Fatalf("%s b=%d: WriteTo = %d, %v", name, b, n, err)
			}
			blob := append([]byte{}, buf.Bytes()...)
			back, err := Decode(bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("%s b=%d: decode: %v", name, b, err)
			}
			buf.Reset()
			if _, err := back.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, buf.Bytes()) {
				t.Fatalf("%s b=%d: re-encoded bytes differ", name, b)
			}
			if back.B() != s.B() || back.N() != s.N() {
				t.Fatalf("%s b=%d: shape differs", name, b)
			}
			if math.Float64bits(back.Error()) != math.Float64bits(s.Error()) {
				t.Fatalf("%s b=%d: Error = %v, want %v", name, b, back.Error(), s.Error())
			}
			want, err1 := s.Reconstruct()
			got, err2 := back.Reconstruct()
			if err1 != nil || err2 != nil {
				t.Fatalf("%s b=%d: reconstruct: %v, %v", name, b, err1, err2)
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s b=%d: reconstruction differs at %d", name, b, i)
				}
			}
		}
	}
}

func TestSynopsisBinaryRejectsMalformed(t *testing.T) {
	s, err := NewSynopsis([]float64{1, 2, 3, 4, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for cut := 0; cut < len(good); cut++ {
		if _, err := Decode(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("accepted truncation at %d/%d", cut, len(good))
		}
	}
	for pos := 6; pos < len(good)-1; pos++ {
		bad := append([]byte{}, good...)
		bad[pos] ^= 0x04
		if _, err := Decode(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d decoded silently", pos)
		}
	}
}
