// Package wavelet implements Haar-wavelet synopses — the classical
// alternative to V-optimal histograms that the paper's related work
// discusses (wavelet-based techniques in [GKS06] and the synopses survey
// [CGHJ12]). Keeping the B largest-magnitude coefficients of the orthonormal
// Haar transform is the ℓ2-optimal B-term wavelet approximation, which makes
// it a natural accuracy baseline for the histogram algorithms: both
// approximate in ℓ2 with O(B) stored numbers.
package wavelet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
)

// Transform computes the orthonormal Haar wavelet transform of q. The input
// length must be a power of two (use Pad). The output has the same length:
// index 0 is the scaling coefficient, the rest are detail coefficients by
// increasing resolution. Orthonormality means Parseval holds:
// ‖Transform(q)‖₂ = ‖q‖₂.
func Transform(q []float64) ([]float64, error) {
	n := len(q)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	out := make([]float64, n)
	copy(out, q)
	buf := make([]float64, n)
	inv := 1 / math.Sqrt2
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			a, b := out[2*i], out[2*i+1]
			buf[i] = (a + b) * inv
			buf[half+i] = (a - b) * inv
		}
		copy(out[:length], buf[:length])
	}
	return out, nil
}

// Inverse computes the inverse orthonormal Haar transform.
func Inverse(coeffs []float64) ([]float64, error) {
	n := len(coeffs)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("wavelet: length %d is not a power of two", n)
	}
	out := make([]float64, n)
	copy(out, coeffs)
	buf := make([]float64, n)
	inv := 1 / math.Sqrt2
	for length := 2; length <= n; length *= 2 {
		half := length / 2
		for i := 0; i < half; i++ {
			s, d := out[i], out[half+i]
			buf[2*i] = (s + d) * inv
			buf[2*i+1] = (s - d) * inv
		}
		copy(out[:length], buf[:length])
	}
	return out, nil
}

// Pad extends q to the next power of two by repeating the final value
// (repetition rather than zero padding avoids creating an artificial jump
// that would consume detail coefficients). It returns the padded vector and
// the original length.
func Pad(q []float64) ([]float64, int) {
	n := len(q)
	if n == 0 {
		return nil, 0
	}
	p := 1
	for p < n {
		p *= 2
	}
	if p == n {
		return q, n
	}
	out := make([]float64, p)
	copy(out, q)
	for i := n; i < p; i++ {
		out[i] = q[n-1]
	}
	return out, n
}

// Synopsis is a B-term Haar wavelet synopsis of a vector over [1, n].
type Synopsis struct {
	n       int // original (pre-padding) length
	pn      int // padded length
	indices []int
	values  []float64
	// droppedEnergy is Σ of squared dropped coefficients — by Parseval the
	// exact squared ℓ2 reconstruction error on the padded vector.
	droppedEnergy float64
}

// NewSynopsis keeps the B coefficients of largest magnitude. Ties at the
// threshold are broken by lower index (coarser scale first).
func NewSynopsis(q []float64, b int) (*Synopsis, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("wavelet: empty input")
	}
	if b < 1 {
		return nil, fmt.Errorf("wavelet: B must be ≥ 1, got %d", b)
	}
	padded, n := Pad(q)
	coeffs, err := Transform(padded)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(coeffs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		ma, mc := math.Abs(coeffs[idx[a]]), math.Abs(coeffs[idx[c]])
		if ma != mc {
			return ma > mc
		}
		return idx[a] < idx[c]
	})
	if b > len(coeffs) {
		b = len(coeffs)
	}
	s := &Synopsis{n: n, pn: len(padded)}
	kept := idx[:b]
	sort.Ints(kept)
	for _, i := range kept {
		s.indices = append(s.indices, i)
		s.values = append(s.values, coeffs[i])
	}
	for _, i := range idx[b:] {
		s.droppedEnergy += coeffs[i] * coeffs[i]
	}
	return s, nil
}

// B returns the number of stored coefficients.
func (s *Synopsis) B() int { return len(s.indices) }

// N returns the original vector length.
func (s *Synopsis) N() int { return s.n }

// Error returns the exact ℓ2 reconstruction error on the padded vector
// (Parseval: the root of the dropped coefficients' energy). The error on the
// original prefix is at most this.
func (s *Synopsis) Error() float64 { return math.Sqrt(numeric.ClampNonNeg(s.droppedEnergy)) }

// Reconstruct materializes the synopsis as a dense vector of the original
// length.
func (s *Synopsis) Reconstruct() ([]float64, error) {
	coeffs := make([]float64, s.pn)
	for i, idx := range s.indices {
		coeffs[idx] = s.values[i]
	}
	full, err := Inverse(coeffs)
	if err != nil {
		return nil, err
	}
	return full[:s.n], nil
}
