package wavelet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
	"repro/internal/rng"
)

func TestTransformValidation(t *testing.T) {
	for _, n := range []int{0, 3, 5, 6, 7, 1000} {
		q := make([]float64, n)
		if _, err := Transform(q); err == nil {
			t.Errorf("length %d should error", n)
		}
		if _, err := Inverse(q); err == nil {
			t.Errorf("inverse length %d should error", n)
		}
	}
}

func TestTransformConstant(t *testing.T) {
	// A constant vector has only the scaling coefficient.
	q := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	c, err := Transform(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-3*math.Sqrt(8)) > 1e-12 {
		t.Fatalf("scaling coefficient %v", c[0])
	}
	for i := 1; i < len(c); i++ {
		if math.Abs(c[i]) > 1e-12 {
			t.Fatalf("detail coefficient %d = %v, want 0", i, c[i])
		}
	}
}

func TestRoundTrip(t *testing.T) {
	r := rng.New(251)
	for _, n := range []int{1, 2, 4, 64, 1024} {
		q := make([]float64, n)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		c, err := Transform(q)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Inverse(c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range q {
			if !numeric.AlmostEqual(back[i], q[i], 1e-9) {
				t.Fatalf("n=%d: round trip differs at %d: %v vs %v", n, i, back[i], q[i])
			}
		}
	}
}

func TestParseval(t *testing.T) {
	r := rng.New(257)
	q := make([]float64, 512)
	for i := range q {
		q[i] = r.NormFloat64() * 3
	}
	c, err := Transform(q)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(numeric.L2Norm(c), numeric.L2Norm(q), 1e-9) {
		t.Fatalf("Parseval violated: %v vs %v", numeric.L2Norm(c), numeric.L2Norm(q))
	}
}

func TestPad(t *testing.T) {
	q := []float64{1, 2, 3}
	p, n := Pad(q)
	if n != 3 || len(p) != 4 {
		t.Fatalf("pad: len %d orig %d", len(p), n)
	}
	if p[3] != 3 {
		t.Fatalf("pad value %v, want repeat of last", p[3])
	}
	// Power-of-two input passes through.
	q2 := []float64{1, 2, 3, 4}
	p2, n2 := Pad(q2)
	if len(p2) != 4 || n2 != 4 {
		t.Fatal("power-of-two pad changed length")
	}
	if p0, n0 := Pad(nil); p0 != nil || n0 != 0 {
		t.Fatal("empty pad")
	}
}

func TestSynopsisFullBIsExact(t *testing.T) {
	r := rng.New(263)
	q := make([]float64, 128)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	s, err := NewSynopsis(q, 128)
	if err != nil {
		t.Fatal(err)
	}
	if s.Error() > 1e-9 {
		t.Fatalf("full-B synopsis error %v", s.Error())
	}
	back, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	for i := range q {
		if !numeric.AlmostEqual(back[i], q[i], 1e-9) {
			t.Fatalf("full-B reconstruction differs at %d", i)
		}
	}
}

func TestSynopsisErrorMatchesParseval(t *testing.T) {
	r := rng.New(269)
	q := make([]float64, 256)
	for i := range q {
		q[i] = r.NormFloat64() + math.Sin(float64(i)/10)*4
	}
	for _, b := range []int{1, 8, 32, 100} {
		s, err := NewSynopsis(q, b)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Reconstruct()
		if err != nil {
			t.Fatal(err)
		}
		actual := numeric.L2Dist(back, q)
		if !numeric.AlmostEqual(actual, s.Error(), 1e-6) {
			t.Fatalf("B=%d: reported %v, actual %v", b, s.Error(), actual)
		}
		if s.B() > b {
			t.Fatalf("stored %d > B=%d", s.B(), b)
		}
	}
}

func TestSynopsisValidation(t *testing.T) {
	if _, err := NewSynopsis(nil, 1); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := NewSynopsis([]float64{1, 2}, 0); err == nil {
		t.Fatal("B=0 should error")
	}
}

func TestSynopsisErrorMonotoneInB(t *testing.T) {
	r := rng.New(271)
	q := make([]float64, 512)
	for i := range q {
		q[i] = r.NormFloat64()
	}
	prev := math.Inf(1)
	for b := 1; b <= 512; b *= 2 {
		s, err := NewSynopsis(q, b)
		if err != nil {
			t.Fatal(err)
		}
		if s.Error() > prev+1e-9 {
			t.Fatalf("error grew with B at %d", b)
		}
		prev = s.Error()
	}
}

// Property: the top-B synopsis is ℓ2-optimal among wavelet synopses — any
// other choice of B coefficients has at least as much error.
func TestSynopsisOptimalityProperty(t *testing.T) {
	f := func(seed uint32, bRaw uint8) bool {
		r := rng.New(uint64(seed))
		q := make([]float64, 32)
		for i := range q {
			q[i] = r.NormFloat64()
		}
		b := int(bRaw)%31 + 1
		s, err := NewSynopsis(q, b)
		if err != nil {
			return false
		}
		coeffs, err := Transform(q)
		if err != nil {
			return false
		}
		// Random alternative coefficient subset of the same size.
		perm := r.Perm(len(coeffs))
		var altDropped float64
		keep := map[int]bool{}
		for _, i := range perm[:b] {
			keep[i] = true
		}
		for i, c := range coeffs {
			if !keep[i] {
				altDropped += c * c
			}
		}
		return s.Error() <= math.Sqrt(altDropped)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSynopsisNonPowerOfTwo(t *testing.T) {
	// Padded reconstruction must still match the original prefix closely
	// when B captures everything.
	q := []float64{5, 5, 5, 2, 2}
	s, err := NewSynopsis(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	back, err := s.Reconstruct()
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("reconstruction length %d", len(back))
	}
	for i := range q {
		if !numeric.AlmostEqual(back[i], q[i], 1e-9) {
			t.Fatalf("differs at %d: %v vs %v", i, back[i], q[i])
		}
	}
}
