package histapprox

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// The public API contract: Options.Workers never changes any output.
// Fit, FitFast, and Learn must produce bit-identical histograms (pieces,
// values, error) for every worker count, across shapes that stress ties,
// spikes, and odd lengths at sizes large enough to engage the parallel path.

func publicFixtures() map[string][]float64 {
	r := rng.New(733)
	fixtures := make(map[string][]float64)

	noisy := stepData(r, 50001, 7, 0.3) // odd length
	fixtures["noisySteps"] = noisy

	ties := make([]float64, 40000)
	for i := range ties {
		ties[i] = float64(i % 2)
	}
	fixtures["ties"] = ties

	spiky := make([]float64, 60000)
	for i := 0; i < len(spiky); i += 997 {
		spiky[i] = float64(i%13) * 1e6
	}
	fixtures["sparseSpikes"] = spiky

	return fixtures
}

func identicalHistograms(t *testing.T, label string, a, b *Histogram, errA, errB float64) {
	t.Helper()
	if math.Float64bits(errA) != math.Float64bits(errB) {
		t.Fatalf("%s: error %v vs %v (bits differ)", label, errA, errB)
	}
	pa, pb := a.Pieces(), b.Pieces()
	if len(pa) != len(pb) {
		t.Fatalf("%s: %d vs %d pieces", label, len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Interval != pb[i].Interval {
			t.Fatalf("%s: piece %d interval %v vs %v", label, i, pa[i].Interval, pb[i].Interval)
		}
		if math.Float64bits(pa[i].Value) != math.Float64bits(pb[i].Value) {
			t.Fatalf("%s: piece %d value %v vs %v (bits differ)", label, i, pa[i].Value, pb[i].Value)
		}
	}
}

func TestWorkersInvarianceFitAndFitFast(t *testing.T) {
	for name, data := range publicFixtures() {
		serial := DefaultOptions()
		serial.Workers = 1
		hs, es, err := Fit(data, 9, &serial)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fs, efs, err := FitFast(data, 9, &serial)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range []int{2, 8} {
			opts := DefaultOptions()
			opts.Workers = w
			hp, ep, err := Fit(data, 9, &opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			identicalHistograms(t, name+"/Fit", hs, hp, es, ep)
			fp, efp, err := FitFast(data, 9, &opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			identicalHistograms(t, name+"/FitFast", fs, fp, efs, efp)
		}
	}
}

func TestWorkersInvarianceLearn(t *testing.T) {
	n := 30000
	masses := make([]float64, n)
	for i := range masses {
		masses[i] = float64(1 + i%5)
	}
	p, err := DistributionFromWeights(masses)
	if err != nil {
		t.Fatal(err)
	}
	samples := Draw(p, 200000, 97)
	serial := PaperOptions()
	serial.Workers = 1
	hs, reps, err := Learn(n, samples, 6, &serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		opts := PaperOptions()
		opts.Workers = w
		hp, repp, err := Learn(n, samples, 6, &opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		identicalHistograms(t, "Learn", hs, hp, reps.EmpiricalError, repp.EmpiricalError)
		if reps.Support != repp.Support || reps.Pieces != repp.Pieces || reps.Rounds != repp.Rounds {
			t.Fatalf("workers=%d: report %+v vs serial %+v", w, repp, reps)
		}
	}
}

func TestFitMultiscaleWorkersInvariance(t *testing.T) {
	data := stepData(rng.New(811), 40000, 11, 0.2)
	serial, err := FitMultiscaleWorkers(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := FitMultiscaleWorkers(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumLevels() != par.NumLevels() {
		t.Fatalf("levels %d vs %d", par.NumLevels(), serial.NumLevels())
	}
	for _, k := range []int{1, 3, 10} {
		rs, err := serial.ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := par.ForK(k)
		if err != nil {
			t.Fatal(err)
		}
		identicalHistograms(t, "FitMultiscale", rs.Histogram, rp.Histogram, rs.Error, rp.Error)
	}
}

func TestDrawWorkersPublic(t *testing.T) {
	p, err := DistributionFromWeights([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	a := DrawWorkers(p, 50000, 13, 4)
	b := DrawWorkers(p, 50000, 13, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DrawWorkers not deterministic for fixed seed and workers")
		}
	}
}
