package histapprox

import (
	"math"
	"testing"
)

// queryColumn builds a deterministic skewed frequency vector for the
// public-API query tests.
func queryColumn(n int) []float64 {
	freq := make([]float64, n)
	state := uint64(2027)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for i := range freq {
		freq[i] = math.Floor(10 * next())
		if i%97 == 0 {
			freq[i] += 500 // heavy hitters
		}
	}
	return freq
}

func TestPublicRangeSumAndBatches(t *testing.T) {
	freq := queryColumn(5000)
	h, _, err := Fit(freq, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// RangeSum agrees with summing At over the range.
	for _, q := range [][2]int{{1, 5000}, {1, 1}, {4999, 5000}, {123, 4567}} {
		var want float64
		for x := q[0]; x <= q[1]; x++ {
			want += h.At(x)
		}
		got := h.RangeSum(q[0], q[1])
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("RangeSum(%d, %d) = %v, pointwise sum %v", q[0], q[1], got, want)
		}
	}
	// Batched paths are bit-identical to single queries for every worker
	// count at the public API level too.
	xs := make([]int, 0, 2500)
	as := make([]int, 0, 2500)
	bs := make([]int, 0, 2500)
	for x := 1; x <= 5000; x += 2 {
		xs = append(xs, x)
		hi := x + 37
		if hi > 5000 {
			hi = 5000
		}
		as = append(as, x)
		bs = append(bs, hi)
	}
	for _, workers := range []int{1, 2, 8} {
		vs := h.AtBatch(xs, nil, workers)
		for i, x := range xs {
			if vs[i] != h.At(x) {
				t.Fatalf("workers=%d: AtBatch[%d] != At(%d)", workers, i, x)
			}
		}
		rs := h.RangeSumBatch(as, bs, nil, workers)
		for i := range as {
			if rs[i] != h.RangeSum(as[i], bs[i]) {
				t.Fatalf("workers=%d: RangeSumBatch[%d] != RangeSum", workers, i)
			}
		}
	}
}

func TestEstimateRangesAcrossEstimators(t *testing.T) {
	freq := queryColumn(4096)
	builders := map[string]func() (SelectivityEstimator, error){
		"voptimal":  func() (SelectivityEstimator, error) { return NewSelectivityEstimator(freq, 12) },
		"equiwidth": func() (SelectivityEstimator, error) { return NewEquiWidthEstimator(freq, 25) },
		"equidepth": func() (SelectivityEstimator, error) { return NewEquiDepthEstimator(freq, 25) },
		"wavelet":   func() (SelectivityEstimator, error) { return NewWaveletEstimator(freq, 50) },
	}
	as := make([]int, 0, 3000)
	bs := make([]int, 0, 3000)
	for i := 0; i < 3000; i++ {
		a := 1 + (i*131)%4096
		b := a + (i*17)%(4096-a+1)
		as = append(as, a)
		bs = append(bs, b)
	}
	for name, build := range builders {
		est, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			got, err := EstimateRanges(est, as, bs, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range as {
				want, err := est.EstimateRange(as[i], bs[i])
				if err != nil {
					t.Fatal(err)
				}
				if got[i] != want {
					t.Fatalf("%s workers=%d: EstimateRanges[%d] = %v, single = %v",
						name, workers, i, got[i], want)
				}
			}
		}
	}
}

func TestStreamingEstimateRangeWithoutCompaction(t *testing.T) {
	sh, err := NewStreamingHistogram(1000, 8, 256, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := 1; i <= 1000; i++ {
		w := float64(1 + i%5)
		total += w
		if err := sh.Add(i, w); err != nil {
			t.Fatal(err)
		}
	}
	got, err := sh.EstimateRange(1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-total) > 1e-6*total {
		t.Fatalf("streaming EstimateRange(1, 1000) = %v, streamed mass %v", got, total)
	}
}
