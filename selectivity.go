package histapprox

import (
	"repro/internal/synopsis"
)

// EstimateRanges answers a batch of range-count queries [as[i], bs[i]] from
// one synopsis: the whole batch shares a single query index, consecutive
// queries exploit sorted-query locality, and workers goroutines fan the
// batch out. The workers knob follows the Options.Workers convention on
// every synopsis type, native batch path or not: any value ≤ 0 means all
// cores (GOMAXPROCS), 1 forces the serial loop, any other positive value is
// used as given; batches below the parallel grain run serially regardless
// as a pure performance heuristic. Every element is bit-identical to the
// corresponding single EstimateRange call for every workers value; batching
// only buys throughput. This is the serving entry point for the
// build-once/query-millions shape of selectivity estimation.
func EstimateRanges(est SelectivityEstimator, as, bs []int, workers int) ([]float64, error) {
	return synopsis.EstimateRangeBatch(est, as, bs, workers)
}

// SelectivityEstimator answers approximate range-count queries over a column
// from an O(k)-bucket synopsis — the database application that motivates the
// paper (Section 1). Build one with NewSelectivityEstimator (near-V-optimal
// buckets via the merging algorithm) or the classical baselines
// NewEquiWidthEstimator / NewEquiDepthEstimator.
type SelectivityEstimator = synopsis.Synopsis

// ColumnFrequencies converts raw column values (each in [1, n]) into the
// frequency vector estimators are built from.
func ColumnFrequencies(values []int, n int) ([]float64, error) {
	return synopsis.Frequencies(values, n)
}

// NewSelectivityEstimator builds a near-V-optimal histogram synopsis with
// ≈ 2k+1 buckets in O(n) time using the paper's merging algorithm. The
// V-optimal criterion (minimal ℓ2 error on the frequency vector) is the
// standard quality measure for selectivity-estimation histograms [IP95].
func NewSelectivityEstimator(freq []float64, k int) (SelectivityEstimator, error) {
	return synopsis.VOptimal(freq, k)
}

// NewEquiWidthEstimator builds the classical k fixed-width buckets.
func NewEquiWidthEstimator(freq []float64, k int) (SelectivityEstimator, error) {
	return synopsis.EquiWidth(freq, k)
}

// NewEquiDepthEstimator builds k equal-mass (quantile) buckets.
func NewEquiDepthEstimator(freq []float64, k int) (SelectivityEstimator, error) {
	return synopsis.EquiDepth(freq, k)
}

// NewWaveletEstimator builds a B-term Haar wavelet synopsis answering the
// same range-count queries — the classical ℓ2 synopsis baseline. For equal
// storage, compare b coefficients against a histogram with b/2 pieces.
func NewWaveletEstimator(freq []float64, b int) (SelectivityEstimator, error) {
	return synopsis.Wavelet(freq, b)
}

// ExactCounter answers range counts exactly (the accuracy oracle for
// comparing estimators).
type ExactCounter = synopsis.Exact

// NewExactCounter builds an exact range counter in O(n).
func NewExactCounter(freq []float64) *ExactCounter { return synopsis.NewExact(freq) }
