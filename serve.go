package histapprox

import (
	"net/http"
	"time"

	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/synopsis"
)

// Serving over HTTP.
//
// A SynopsisServer hosts any number of named synopses behind an HTTP
// handler, turning the build-once/query-millions shape of this library into
// a deployable service (see cmd/histserved for the standalone daemon and
// examples/server for a runnable walkthrough):
//
//	srv := histapprox.NewSynopsisServer(nil)
//	srv.Host("latency", hist)                       // any synopsis type
//	srv.Host("events", sharded)                     // live intake engine
//	http.ListenAndServe(":8157", srv.Handler())
//
// Endpoints per hosted name: /v1/{name}/at and /v1/{name}/range answer
// point/range queries (GET with ?x= / ?a=&b= for single queries, POST with
// a JSON or binary batch body for bulk serving, routed to the indexed
// AtBatch / RangeSumBatch / EstimateRanges kernels), /v1/{name}/add ingests
// update batches into a hosted streaming engine, and /v1/{name}/snapshot
// GETs or PUTs the synopsis as one PR 4 binary envelope — the replication
// primitive: snapshot a live engine from one server and push it to another,
// which hot-swaps the served object with a single atomic pointer store,
// without blocking in-flight readers and without a lock anywhere on the
// request path.
//
// Answers over the wire are bit-identical to calling the library directly:
// binary bodies carry raw IEEE-754 bits, and JSON uses Go's shortest
// round-tripping float rendering.

// SynopsisServer hosts a registry of named synopses behind an HTTP handler.
// All methods are safe for concurrent use.
type SynopsisServer = serve.Server

// ServeConfig tunes a SynopsisServer: batch fan-out workers (the
// Options.Workers convention: ≤ 0 = all cores), per-request batch caps, and
// the pushed-snapshot size limit.
type ServeConfig = serve.Config

// ServeClient is a typed client for a SynopsisServer: batched At/Ranges
// queries (JSON or binary bodies), Add ingestion, and Snapshot/Push
// replication.
type ServeClient = serve.Client

// ServedSynopsisInfo is one row of a server's registry listing.
type ServedSynopsisInfo = serve.NameInfo

// ServeAPIError is the typed error a ServeClient returns when the server
// answered with a non-2xx status: it carries the status code and the
// server's diagnostic message. Transport failures (refused connections,
// timeouts) are NOT ServeAPIErrors.
type ServeAPIError = serve.APIError

// SynopsisReplicator fans one primary's sharded engine out to N replicas by
// shipping version-vector deltas on a fixed cadence, with per-replica
// pipelined tracking and automatic full-resync after a primary or replica
// restart.
type SynopsisReplicator = serve.Replicator

// ReplicaStatus is one replica's externally visible replication state.
type ReplicaStatus = serve.ReplicaStatus

// ServeFleet routes synopsis names across a set of servers with a
// consistent-hash ring: adding or removing one server remaps only ~1/N of
// the names instead of reshuffling everything.
type ServeFleet = serve.Fleet

// ShardedCheckpoint is an immutable, non-blocking capture of a
// ShardedHistogram's state: Checkpoint() never waits for an in-flight
// background compaction, and WriteTo emits the same binary envelope
// Snapshot writes (restorable by RestoreShardedMaintainer). It is what a
// server streams for GET /v1/{name}/snapshot on a hosted intake engine.
type ShardedCheckpoint = stream.Checkpoint

// NewSynopsisServer builds an HTTP synopsis server (nil cfg for defaults).
// Host synopses with Host or Load, then mount Handler on any http server.
func NewSynopsisServer(cfg *ServeConfig) *SynopsisServer {
	return serve.NewServer(cfg)
}

// NewServeClient builds a client for the synopsis server at base (for
// example "http://localhost:8157"). hc nil means http.DefaultClient; binary
// selects binary batch bodies, which are bit-identical to JSON answers but
// cheaper to ship and decode.
func NewServeClient(base string, hc *http.Client, binary bool) *ServeClient {
	return serve.NewClient(base, hc, binary)
}

// NewSynopsisReplicator builds a replicator shipping the named engine from
// primary to every replica. interval is the cadence for Start (≤ 0 means
// one second); SyncOnce/SyncAll drive rounds by hand regardless.
func NewSynopsisReplicator(name string, primary *ServeClient, replicas []*ServeClient, interval time.Duration) (*SynopsisReplicator, error) {
	return serve.NewReplicator(name, primary, replicas, interval)
}

// NewServeFleet builds a consistent-hash router over the given clients. Ring
// positions derive from each client's Base URL, so every process that builds
// a fleet from the same member list routes identically — stateless clients
// agree on placement with no coordination.
func NewServeFleet(clients []*ServeClient) (*ServeFleet, error) {
	return serve.NewFleet(clients)
}

// WaveletEstimatorOf adapts an existing WaveletSynopsis (for example one
// decoded from a snapshot) into a range estimator answering the same
// queries bit-identically to NewWaveletEstimator on the original frequency
// vector.
func WaveletEstimatorOf(ws *WaveletSynopsis) (SelectivityEstimator, error) {
	return synopsis.FromWavelet(ws)
}
