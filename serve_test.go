package histapprox

import (
	"bytes"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// serveTestQueries is a deterministic query workload over [1, n].
func serveTestQueries(n, count int) (xs, as, bs []int) {
	state := uint64(4242)
	xs = make([]int, count)
	as = make([]int, count)
	bs = make([]int, count)
	for i := 0; i < count; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		xs[i] = 1 + int(state>>33)%n
		a := 1 + int(state>>13)%n
		as[i] = a
		bs[i] = a + int(state>>3)%(n-a+1)
	}
	return xs, as, bs
}

func requireBits(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d values, want %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: wire %v, in-process %v (must be bit-identical)", label, i, got[i], want[i])
		}
	}
}

// TestServeGoldenSnapshotsOverTheWire boots a server via httptest, replays
// every golden v1 snapshot fixture over PUT /snapshot, and asserts the wire
// answers — JSON and binary bodies — are bit-identical to calling the
// library directly on the decoded fixture. This is the end-to-end contract
// of the serving layer: HTTP adds transport, never arithmetic.
func TestServeGoldenSnapshotsOverTheWire(t *testing.T) {
	srv := NewSynopsisServer(&ServeConfig{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	jsonClient := NewServeClient(ts.URL, ts.Client(), false)
	binClient := NewServeClient(ts.URL, ts.Client(), true)

	// The poly fixture is deliberately absent: piecewise polynomials have no
	// point/range serving semantics yet, and the server must refuse them.
	fixtures := []string{"histogram", "hierarchy", "cdf", "wavelet", "estimator", "maintainer", "sharded"}
	const hierK = 3
	for _, name := range fixtures {
		blob, err := os.ReadFile(filepath.Join("testdata", name+"_v1.bin"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := jsonClient.Push(name, bytes.NewReader(blob)); err != nil {
			t.Fatalf("%s: push: %v", name, err)
		}

		obj, err := Decode(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		// Every fixture is built over [1, 600] (see codec_test.go).
		const n = 600
		xs, as, bs := serveTestQueries(n, 48)

		var wantPoints, wantRanges []float64
		estAll := func(er func(int, int) (float64, error), as, bs []int) []float64 {
			out := make([]float64, len(as))
			for i := range as {
				v, err := er(as[i], bs[i])
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				out[i] = v
			}
			return out
		}
		switch obj := obj.(type) {
		case *Histogram:
			wantPoints = obj.AtBatch(xs, nil, 1)
			wantRanges = obj.RangeSumBatch(as, bs, nil, 1)
		case *Hierarchy:
			res, err := obj.ForK(hierK)
			if err != nil {
				t.Fatal(err)
			}
			wantPoints = res.Histogram.AtBatch(xs, nil, 1)
			wantRanges = res.Histogram.RangeSumBatch(as, bs, nil, 1)
		case *CDF:
			wantPoints = make([]float64, len(xs))
			for i, x := range xs {
				if wantPoints[i], err = obj.At(x); err != nil {
					t.Fatal(err)
				}
			}
			wantRanges = make([]float64, len(as))
			for i := range as {
				hi, err := obj.At(bs[i])
				if err != nil {
					t.Fatal(err)
				}
				var lo float64
				if as[i] > 1 {
					if lo, err = obj.At(as[i] - 1); err != nil {
						t.Fatal(err)
					}
				}
				wantRanges[i] = hi - lo
			}
		case *WaveletSynopsis:
			est, err := WaveletEstimatorOf(obj)
			if err != nil {
				t.Fatal(err)
			}
			if wantPoints, err = EstimateRanges(est, xs, xs, 1); err != nil {
				t.Fatal(err)
			}
			if wantRanges, err = EstimateRanges(est, as, bs, 1); err != nil {
				t.Fatal(err)
			}
		case *StreamingHistogram:
			wantPoints = estAll(obj.EstimateRange, xs, xs)
			wantRanges = estAll(obj.EstimateRange, as, bs)
		case *ShardedHistogram:
			wantPoints = estAll(obj.EstimateRange, xs, xs)
			wantRanges = estAll(obj.EstimateRange, as, bs)
		default:
			est, ok := obj.(SelectivityEstimator)
			if !ok {
				t.Fatalf("%s: decoded %T is not servable", name, obj)
			}
			if wantPoints, err = EstimateRanges(est, xs, xs, 1); err != nil {
				t.Fatal(err)
			}
			if wantRanges, err = EstimateRanges(est, as, bs, 1); err != nil {
				t.Fatal(err)
			}
		}

		for label, c := range map[string]*ServeClient{"json": jsonClient, "binary": binClient} {
			got, err := c.AtForK(name, hierK, xs)
			if err != nil {
				t.Fatalf("%s/%s: At: %v", name, label, err)
			}
			requireBits(t, name+"/"+label+"/at", got, wantPoints)
			got, err = c.RangesForK(name, hierK, as, bs)
			if err != nil {
				t.Fatalf("%s/%s: Ranges: %v", name, label, err)
			}
			requireBits(t, name+"/"+label+"/range", got, wantRanges)
		}

		// The snapshot served back must decode with the library.
		var back bytes.Buffer
		if err := jsonClient.Snapshot(name, &back); err != nil {
			t.Fatalf("%s: snapshot: %v", name, err)
		}
		if _, err := Decode(bytes.NewReader(back.Bytes())); err != nil {
			t.Fatalf("%s: served snapshot does not decode: %v", name, err)
		}
	}

	// The poly fixture must be refused, not mis-served.
	blob, err := os.ReadFile(filepath.Join("testdata", "poly_v1.bin"))
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonClient.Push("poly", bytes.NewReader(blob)); err == nil {
		t.Fatal("pushing a piecewise-polynomial snapshot should be refused")
	}
}

// TestServeReplicationRoundTrip is the restore → add → snapshot →
// second-server chain: restore a sharded checkpoint into server A, ingest
// over the wire, snapshot A, push into server B, and require B's answers to
// be bit-identical to a library replica driven through the same states.
func TestServeReplicationRoundTrip(t *testing.T) {
	const (
		n = 2000
		k = 5
		// One shard's pending log must never fill during the wire adds, so
		// no background compaction can be mid-flight at snapshot time and
		// the round trip stays bit-deterministic.
		bufferCap = 8192
	)
	opts := DefaultOptions()
	opts.Workers = 1

	// Seed an engine, quiesce it, snapshot it: the "yesterday's checkpoint".
	seed, err := NewShardedMaintainer(n, k, 3, bufferCap, &opts)
	if err != nil {
		t.Fatal(err)
	}
	points, weights := codecStream(n, 3000)
	for i := range points {
		if err := seed.Add(points[i], weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := seed.Summary(); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := Encode(&ckpt, seed); err != nil {
		t.Fatal(err)
	}

	// Server A restores the checkpoint.
	srvA := NewSynopsisServer(&ServeConfig{Workers: 1})
	if err := srvA.Load("events", bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	clientA := NewServeClient(tsA.URL, tsA.Client(), true)

	// The library replica restores the same bytes and sees the same adds in
	// the same order.
	replica, err := RestoreShardedMaintainer(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	addPts, addWts := codecStream(n, 700)
	if err := clientA.Add("events", addPts, addWts); err != nil {
		t.Fatal(err)
	}
	if err := replica.AddBatch(addPts, addWts); err != nil {
		t.Fatal(err)
	}

	// Snapshot A over the wire, push into a fresh server B.
	var snap bytes.Buffer
	if err := clientA.Snapshot("events", &snap); err != nil {
		t.Fatal(err)
	}
	srvB := NewSynopsisServer(&ServeConfig{Workers: 1})
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	clientB := NewServeClient(tsB.URL, tsB.Client(), false)
	if err := clientB.Push("events", bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}

	// B answers — over the wire — bit-identically to the in-process replica.
	_, as, bs := serveTestQueries(n, 64)
	want := make([]float64, len(as))
	for i := range as {
		if want[i], err = replica.EstimateRange(as[i], bs[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := clientB.Ranges("events", as, bs)
	if err != nil {
		t.Fatal(err)
	}
	requireBits(t, "replicated ranges", got, want)

	// And the replica's own snapshot must be byte-identical to what B would
	// serve: same state, same envelope.
	var fromB, fromReplica bytes.Buffer
	if err := clientB.Snapshot("events", &fromB); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&fromReplica, replica); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromB.Bytes(), fromReplica.Bytes()) {
		t.Fatal("server B's snapshot differs from the library replica's")
	}
}
