package histapprox

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/sparse"
)

// summaryInput validates and assembles the FitSummary inputs: boundaries are
// the strictly increasing right endpoints of the summary intervals (the last
// must be n); sums[i] and sumSqs[i] are Σq and Σq² of the data inside
// interval i.
func summaryInput(n int, boundaries []int, sums, sumSqs []float64) (interval.Partition, []sparse.Stat, error) {
	if len(boundaries) == 0 {
		return nil, nil, fmt.Errorf("histapprox: empty summary")
	}
	if len(sums) != len(boundaries) || len(sumSqs) != len(boundaries) {
		return nil, nil, fmt.Errorf("histapprox: summary shape mismatch: %d boundaries, %d sums, %d sumSqs",
			len(boundaries), len(sums), len(sumSqs))
	}
	part, err := interval.FromBoundaries(n, boundaries)
	if err != nil {
		return nil, nil, fmt.Errorf("histapprox: %w", err)
	}
	stats := make([]sparse.Stat, len(part))
	for i, iv := range part {
		if sumSqs[i] < 0 {
			return nil, nil, fmt.Errorf("histapprox: negative Σq² in summary interval %d", i)
		}
		stats[i] = sparse.Stat{Len: iv.Len(), Sum: sums[i], SumSq: sumSqs[i]}
	}
	return part, stats, nil
}
