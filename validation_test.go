package histapprox

import (
	"math"
	"testing"
)

func TestFitRejectsNonFinite(t *testing.T) {
	bad := [][]float64{
		{1, math.NaN(), 3},
		{1, math.Inf(1), 3},
		{math.Inf(-1), 2, 3},
	}
	for _, data := range bad {
		if _, _, err := Fit(data, 1, nil); err == nil {
			t.Errorf("Fit(%v) should error", data)
		}
		if _, _, err := FitFast(data, 1, nil); err == nil {
			t.Errorf("FitFast(%v) should error", data)
		}
		if _, err := FitMultiscale(data); err == nil {
			t.Errorf("FitMultiscale(%v) should error", data)
		}
		if _, _, err := FitPolynomial(data, 1, 1, nil); err == nil {
			t.Errorf("FitPolynomial(%v) should error", data)
		}
	}
}

func TestFitAcceptsExtremeButFiniteValues(t *testing.T) {
	data := []float64{1e300, -1e300, 0, 1e-300, 5}
	if _, _, err := Fit(data, 2, nil); err != nil {
		t.Fatalf("finite extremes should be accepted: %v", err)
	}
}
